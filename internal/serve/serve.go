// Package serve is the simulation-as-a-service layer: a long-running HTTP
// job server over the deterministic simulator. Clients POST sweep, leakage-
// scan, or conformance job requests; the server shards each job's cells
// across a bounded worker pool built on the campaign/runner execution
// layers, and memoizes every cell in a content-addressed on-disk store
// (internal/memo) keyed by the cell's campaign content hash — the sha256 of
// its canonical spec JSON (schema-versioned workload, defense, consistency,
// seed, budget, kernel). Because every simulation is byte-deterministic, a
// memoized cell is byte-exact: repeat and concurrent-identical submissions
// are served from cache or deduplicated in flight (singleflight) without
// re-running a single simulation, and a sweep artifact fetched over HTTP is
// byte-identical to the same sweep run via cmd/benchtable.
//
// The package is transport-complete but binary-agnostic: cmd/simserver
// wires it to net/http, signals, and flags. Endpoints:
//
//	POST /api/v1/jobs              submit a job (JSON body, see JobRequest)
//	GET  /api/v1/jobs              list jobs
//	GET  /api/v1/jobs/{id}         job status (state, progress, cache counts)
//	GET  /api/v1/jobs/{id}/artifact  the job's artifact bytes
//	GET  /api/v1/jobs/{id}/verdict   benchdiff verdict vs the baseline (sweeps)
//	GET  /metrics                  cache/pool counters (expvar-style JSON)
//	GET  /healthz                  liveness
//	GET  /, /jobs/{id}, /trends    HTML dashboard (internal/report)
//
// Shutdown is a drain, not an abort: Drain refuses new submissions (503)
// and new cell computations, lets in-flight cells finish and journal,
// then persists the cache index. Refused cells fail with a cancellation-
// classed error, which the campaign layer never journals — so an
// interrupted job re-runs only its unfinished cells on resubmission, and
// even those are typically cache hits.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"invisispec/internal/campaign"
	"invisispec/internal/memo"
	"invisispec/internal/runner"
)

// Options tunes a Server.
type Options struct {
	// Workers is the global compute-slot count shared by every job: at most
	// this many simulations run at once server-wide, regardless of how many
	// jobs are in flight. <=0 means GOMAXPROCS.
	Workers int
	// CacheDir roots the content-addressed memo store (required).
	CacheDir string
	// MaxCacheEntries bounds the store (memo LRU eviction; 0 = unlimited).
	MaxCacheEntries int
	// JournalDir, when non-empty, gives every job a campaign checkpoint
	// journal at <JournalDir>/<jobID>.jsonl.
	JournalDir string
	// HistoryDir, when non-empty, is scanned for committed BENCH_*.json
	// artifacts to draw the dashboard's trend lines.
	HistoryDir string
	// Baseline, when non-empty, is the bench artifact every sweep job is
	// gated against (runner.CompareBench) for its /verdict endpoint.
	Baseline string
	// Retries is the campaign transient-retry budget per cell.
	Retries int
	// CellTimeout bounds each cell attempt's host wall-clock time.
	CellTimeout time.Duration
	// LogWriter receives structured JSON log lines (requests, job
	// transitions, cell completions). nil means no logging. Logs are always
	// separate from artifact bytes: artifacts only ever travel in response
	// bodies.
	LogWriter io.Writer
}

func (o Options) workers() int {
	if o.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.Workers
}

// Server is the simulation job server. Create with New, mount Handler on an
// http.Server, stop with Drain.
type Server struct {
	opts  Options
	store *memo.Store
	mux   *http.ServeMux
	logMu sync.Mutex

	// slots is the global compute semaphore; queueDepth counts cells
	// waiting for a slot, busy counts cells holding one.
	slots      chan struct{}
	queueDepth atomic.Int64
	busy       atomic.Int64

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string // submission order, for listings
	nextID   int
	draining bool
	wg       sync.WaitGroup // in-flight job goroutines

	// testHook, when non-nil, fires at the start of every fresh (non-
	// memoized) cell computation with the cell's name — the deterministic
	// seam the drain tests use to trigger shutdown mid-job.
	testHook func(cellName string)
}

// New opens the memo store and assembles the server. The caller owns the
// lifecycle: mount Handler, then Drain before exit.
func New(opts Options) (*Server, error) {
	if opts.CacheDir == "" {
		return nil, fmt.Errorf("serve: Options.CacheDir is required")
	}
	store, err := memo.Open(opts.CacheDir, memo.Options{MaxEntries: opts.MaxCacheEntries})
	if err != nil {
		return nil, err
	}
	s := &Server{
		opts:  opts,
		store: store,
		slots: make(chan struct{}, opts.workers()),
		jobs:  make(map[string]*Job),
	}
	s.mux = s.routes()
	return s, nil
}

// Handler returns the server's HTTP handler with request logging applied.
func (s *Server) Handler() http.Handler {
	return s.logRequests(s.mux)
}

// Drain stops the server gracefully: new submissions are refused with 503,
// fresh cell computations are refused (in-flight cells finish and journal),
// every job goroutine is waited for, and the memo index is persisted. The
// context bounds the wait; on expiry the index is still persisted and the
// context error returned.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var werr error
	select {
	case <-done:
	case <-ctx.Done():
		werr = fmt.Errorf("serve: drain timed out: %w", ctx.Err())
	}
	if cerr := s.store.Close(); cerr != nil && werr == nil {
		werr = cerr
	}
	s.logLine("drain", map[string]any{"timed_out": werr != nil})
	return werr
}

func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// execFor builds a job's campaign Exec hook: the memoization seam. Every
// cell resolves through the content-addressed store; only a miss acquires a
// global compute slot and runs the simulation. Fresh computes are refused
// while draining with a cancellation-classed error so they are never
// journaled and re-run cleanly on resubmission.
func (s *Server) execFor(job *Job) func(ctx context.Context, c campaign.Cell, key string) (json.RawMessage, error) {
	return func(ctx context.Context, c campaign.Cell, key string) (json.RawMessage, error) {
		val, hit, err := s.store.Do(ctx, key, func(ctx context.Context) ([]byte, error) {
			if s.isDraining() {
				return nil, fmt.Errorf("serve: draining, cell %s refused: %w", c.Name, context.Canceled)
			}
			s.queueDepth.Add(1)
			select {
			case s.slots <- struct{}{}:
				s.queueDepth.Add(-1)
			case <-ctx.Done():
				s.queueDepth.Add(-1)
				return nil, ctx.Err()
			}
			defer func() { <-s.slots }()
			s.busy.Add(1)
			defer s.busy.Add(-1)
			// Re-check after the (possibly long) queue wait: a drain that
			// started while this cell queued must still refuse it.
			if s.isDraining() {
				return nil, fmt.Errorf("serve: draining, cell %s refused: %w", c.Name, context.Canceled)
			}
			if h := s.testHook; h != nil {
				h(c.Name)
			}
			v, err := c.Run(ctx)
			if err != nil {
				return nil, err
			}
			raw, err := json.Marshal(v)
			if err != nil {
				return nil, fmt.Errorf("serve: marshaling cell %s value: %w", c.Name, err)
			}
			return raw, nil
		})
		if err != nil {
			job.cancelledOrFailed(err)
			return nil, err
		}
		if hit {
			job.cacheHits.Add(1)
		} else {
			job.cacheMisses.Add(1)
		}
		return json.RawMessage(val), nil
	}
}

// campaignOpts assembles a job's campaign options: the memoized executor,
// the structured progress feed, and the per-job journal.
func (s *Server) campaignOpts(job *Job) campaign.Options {
	copts := campaign.Options{
		Workers:     s.opts.workers(),
		Retries:     s.opts.Retries,
		CellTimeout: s.opts.CellTimeout,
		Exec:        s.execFor(job),
		OnProgress: func(ev runner.ProgressEvent) {
			job.completed.Store(int64(ev.Completed))
			job.failed.Store(int64(ev.Failed))
			fields := map[string]any{
				"job": job.ID, "cell": ev.Name,
				"completed": ev.Completed, "total": ev.Total, "cell_failed": ev.Failed,
				"eta_ms": ev.ETA.Milliseconds(),
			}
			if ev.Err != nil {
				fields["error"] = ev.Err.Error()
			}
			s.logLine("cell", fields)
		},
	}
	if s.opts.JournalDir != "" {
		copts.Journal = s.journalPath(job.ID)
	}
	return copts
}

// MetricsSnapshot is the /metrics document: memo-store counters plus pool
// and job-registry state. cmd/simserver also publishes it through expvar.
type MetricsSnapshot struct {
	Cache        memo.Stats     `json:"cache"`
	CacheHitRate float64        `json:"cache_hit_rate"`
	QueueDepth   int64          `json:"queue_depth"`
	WorkersBusy  int64          `json:"workers_busy"`
	WorkersTotal int            `json:"workers_total"`
	Jobs         map[string]int `json:"jobs"` // count by state
	Draining     bool           `json:"draining"`
}

// Metrics returns a point-in-time snapshot of the server's counters.
func (s *Server) Metrics() MetricsSnapshot {
	st := s.store.Stats()
	m := MetricsSnapshot{
		Cache:        st,
		CacheHitRate: st.HitRate(),
		QueueDepth:   s.queueDepth.Load(),
		WorkersBusy:  s.busy.Load(),
		WorkersTotal: s.opts.workers(),
		Jobs:         make(map[string]int),
	}
	s.mu.Lock()
	for _, j := range s.jobs {
		m.Jobs[string(j.stateV)]++
	}
	m.Draining = s.draining
	s.mu.Unlock()
	return m
}

// logLine emits one structured JSON log line. Key order is deterministic
// (encoding/json sorts map keys); the timestamp is wall clock — logs are
// host-side observability, never artifact bytes.
func (s *Server) logLine(event string, fields map[string]any) {
	if s.opts.LogWriter == nil {
		return
	}
	rec := make(map[string]any, len(fields)+2)
	for k, v := range fields {
		rec[k] = v
	}
	rec["ts"] = time.Now().UTC().Format(time.RFC3339Nano)
	rec["event"] = event
	out, err := json.Marshal(rec)
	if err != nil {
		return
	}
	s.logMu.Lock()
	defer s.logMu.Unlock()
	s.opts.LogWriter.Write(append(out, '\n'))
}

// logRequests is the request-logging middleware.
func (s *Server) logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		lw := &loggingWriter{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(lw, r)
		s.logLine("request", map[string]any{
			"method": r.Method,
			"path":   r.URL.Path,
			"status": lw.status,
			"bytes":  lw.bytes,
			"dur_ms": float64(time.Since(start).Microseconds()) / 1000,
		})
	})
}

// loggingWriter captures the response status and size for the request log.
type loggingWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *loggingWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *loggingWriter) Write(b []byte) (int, error) {
	n, err := w.ResponseWriter.Write(b)
	w.bytes += int64(n)
	return n, err
}
