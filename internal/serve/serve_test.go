package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"invisispec/internal/campaign"
	"invisispec/internal/config"
	"invisispec/internal/engine"
	"invisispec/internal/runner"
)

// smallSweep is the 3-cell matrix the tests submit: tiny budget, one
// workload, three defenses, TSO only.
func smallSweep() JobRequest {
	return JobRequest{
		Type:        TypeSweep,
		Name:        "t",
		Workloads:   []string{"bzip2"},
		Defenses:    []string{"Base", "Fe-Sp", "IS-Sp"},
		Consistency: []string{"TSO"},
		Warmup:      500,
		Measure:     2000,
	}
}

// referenceSweep assembles the same artifact the server should produce, via
// the exact cmd/benchtable chain, with no serve-layer machinery at all.
func referenceSweep(t *testing.T, req JobRequest) []byte {
	t.Helper()
	if err := req.normalize(); err != nil {
		t.Fatalf("normalize: %v", err)
	}
	defs, err := parseDefenseList(req.Defenses)
	if err != nil {
		t.Fatal(err)
	}
	if defs == nil {
		defs = config.AllDefenses()
	}
	cms, err := config.ParseConsistencies(req.Consistency)
	if err != nil {
		t.Fatal(err)
	}
	kernel, err := engine.ParseKernel(req.Kernel)
	if err != nil {
		t.Fatal(err)
	}
	jobs := runner.Matrix(req.Workloads, req.Parsec, cms, defs, req.Seeds, req.Warmup, req.Measure)
	cells := campaign.JobCells(jobs, kernel, 0)
	outcomes, err := campaign.Run(context.Background(), "ref", cells, campaign.Options{Workers: 2})
	if err != nil {
		t.Fatalf("reference campaign: %v", err)
	}
	results, err := campaign.JobResults(jobs, outcomes)
	if err != nil {
		t.Fatal(err)
	}
	b := runner.NewBench(req.Name, req.Warmup, req.Measure, results)
	b.Degraded = campaign.Degraded(outcomes, nil)
	var buf bytes.Buffer
	if err := runner.WriteBenchJSON(&buf, b); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func newTestServer(t *testing.T, mutate func(*Options)) (*Server, *httptest.Server) {
	t.Helper()
	opts := Options{Workers: 2, CacheDir: t.TempDir()}
	if mutate != nil {
		mutate(&opts)
	}
	s, err := New(opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func submit(t *testing.T, ts *httptest.Server, req JobRequest) jobStatus {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/api/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit: status %d: %s", resp.StatusCode, b)
	}
	var st jobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decoding submit response: %v", err)
	}
	return st
}

func getStatus(t *testing.T, ts *httptest.Server, id string) jobStatus {
	t.Helper()
	resp, err := http.Get(ts.URL + "/api/v1/jobs/" + id)
	if err != nil {
		t.Fatalf("status: %v", err)
	}
	defer resp.Body.Close()
	var st jobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decoding status: %v", err)
	}
	return st
}

// waitTerminal polls until the job leaves pending/running.
func waitTerminal(t *testing.T, ts *httptest.Server, id string) jobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		st := getStatus(t, ts, id)
		switch st.State {
		case StateDone, StateFailed, StateInterrupted:
			return st
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return jobStatus{}
}

func fetch(t *testing.T, ts *httptest.Server, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading %s: %v", path, err)
	}
	return resp.StatusCode, b
}

// TestSweepByteIdentityAndCache is the acceptance spine: an HTTP-fetched
// sweep artifact is byte-identical to the same sweep assembled directly, and
// a repeat submission is served entirely from cache.
func TestSweepByteIdentityAndCache(t *testing.T) {
	want := referenceSweep(t, smallSweep())
	_, ts := newTestServer(t, nil)

	st := submit(t, ts, smallSweep())
	st = waitTerminal(t, ts, st.ID)
	if st.State != StateDone {
		t.Fatalf("job state %s (error %q)", st.State, st.Error)
	}
	if st.Progress.Total != 3 || st.Progress.Completed != 3 {
		t.Errorf("progress %d/%d, want 3/3", st.Progress.Completed, st.Progress.Total)
	}
	if st.Cache.Misses != 3 || st.Cache.Hits != 0 {
		t.Errorf("fresh run cache hits/misses = %d/%d, want 0/3", st.Cache.Hits, st.Cache.Misses)
	}
	code, got := fetch(t, ts, "/api/v1/jobs/"+st.ID+"/artifact")
	if code != http.StatusOK {
		t.Fatalf("artifact status %d", code)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("HTTP artifact differs from direct assembly:\nhttp: %d bytes\nref:  %d bytes", len(got), len(want))
	}

	// Repeat submission: every cell must come from cache, byte-identically,
	// without re-running a single simulation.
	st2 := submit(t, ts, smallSweep())
	st2 = waitTerminal(t, ts, st2.ID)
	if st2.State != StateDone {
		t.Fatalf("repeat job state %s (error %q)", st2.State, st2.Error)
	}
	if st2.Cache.Misses != 0 || st2.Cache.Hits != 3 {
		t.Errorf("repeat cache hits/misses = %d/%d, want 3/0", st2.Cache.Hits, st2.Cache.Misses)
	}
	_, got2 := fetch(t, ts, "/api/v1/jobs/"+st2.ID+"/artifact")
	if !bytes.Equal(got2, want) {
		t.Error("cached artifact differs from fresh artifact")
	}

	// The cache activity is observable in /metrics.
	var m MetricsSnapshot
	_, mb := fetch(t, ts, "/metrics")
	if err := json.Unmarshal(mb, &m); err != nil {
		t.Fatalf("decoding metrics: %v", err)
	}
	if m.Cache.Hits < 3 || m.Cache.Misses != 3 {
		t.Errorf("store hits/misses = %d/%d, want >=3/3", m.Cache.Hits, m.Cache.Misses)
	}
}

// TestConcurrentIdenticalSubmissions: two identical jobs racing each other
// execute every cell exactly once between them (store-level singleflight).
func TestConcurrentIdenticalSubmissions(t *testing.T) {
	s, ts := newTestServer(t, nil)
	var ids [2]string
	var wg sync.WaitGroup
	for i := range ids {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ids[i] = submit(t, ts, smallSweep()).ID
		}(i)
	}
	wg.Wait()
	for _, id := range ids {
		if st := waitTerminal(t, ts, id); st.State != StateDone {
			t.Fatalf("job %s state %s (error %q)", id, st.State, st.Error)
		}
	}
	stats := s.store.Stats()
	if stats.Misses != 3 {
		t.Errorf("store misses = %d, want 3 (each cell computed once)", stats.Misses)
	}
	// Each cell resolved twice: one miss (the leader) and one hit — either
	// a flight join or, if the jobs didn't overlap, a plain cache hit.
	if stats.Hits != 3 {
		t.Errorf("store hits = %d, want 3 (each cell resolved twice)", stats.Hits)
	}
}

// TestDrainMidJob: a drain mid-job lets in-flight cells finish and cache,
// refuses the rest, marks the job interrupted, refuses new submissions with
// 503, persists the cache index — and a new server over the same cache dir
// re-runs only the refused cells.
func TestDrainMidJob(t *testing.T) {
	cacheDir := ""
	drainErr := make(chan error, 1)
	var s *Server
	computes := 0
	s, ts := newTestServer(t, func(o *Options) {
		o.Workers = 1 // sequential cells, deterministic refusal point
		cacheDir = o.CacheDir
	})
	s.testHook = func(cell string) {
		computes++
		if computes == 2 {
			go func() { drainErr <- s.Drain(context.Background()) }()
			for !s.isDraining() {
				time.Sleep(time.Millisecond)
			}
		}
	}

	st := submit(t, ts, smallSweep())
	st = waitTerminal(t, ts, st.ID)
	if st.State != StateInterrupted {
		t.Fatalf("job state %s, want interrupted (error %q)", st.State, st.Error)
	}
	if code, _ := fetch(t, ts, "/api/v1/jobs/"+st.ID+"/artifact"); code != http.StatusConflict {
		t.Errorf("artifact for interrupted job: status %d, want 409", code)
	}

	// Submissions during/after the drain are refused.
	body, _ := json.Marshal(smallSweep())
	resp, err := http.Post(ts.URL+"/api/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("submit while draining: status %d, want 503", resp.StatusCode)
	}
	if err := <-drainErr; err != nil {
		t.Fatalf("Drain: %v", err)
	}

	// A new server over the same cache re-runs only the refused cell: the
	// two cells that completed before/during the drain are hits.
	s2, ts2 := newTestServer(t, func(o *Options) {
		o.Workers = 1
		o.CacheDir = cacheDir
	})
	defer s2.Drain(context.Background())
	st2 := submit(t, ts2, smallSweep())
	st2 = waitTerminal(t, ts2, st2.ID)
	if st2.State != StateDone {
		t.Fatalf("resubmitted job state %s (error %q)", st2.State, st2.Error)
	}
	if st2.Cache.Hits != 2 || st2.Cache.Misses != 1 {
		t.Errorf("resubmission hits/misses = %d/%d, want 2/1", st2.Cache.Hits, st2.Cache.Misses)
	}
	_, got := fetch(t, ts2, "/api/v1/jobs/"+st2.ID+"/artifact")
	if want := referenceSweep(t, smallSweep()); !bytes.Equal(got, want) {
		t.Error("post-drain artifact differs from direct assembly")
	}
}

// TestLeakscanJob exercises the second job family end to end through the
// same memoized executor.
func TestLeakscanJob(t *testing.T) {
	_, ts := newTestServer(t, nil)
	req := JobRequest{Type: TypeLeakscan, Defenses: []string{"Base"}, Trials: 1}
	st := submit(t, ts, req)
	st = waitTerminal(t, ts, st.ID)
	if st.State != StateDone {
		t.Fatalf("leakscan state %s (error %q)", st.State, st.Error)
	}
	code, art := fetch(t, ts, "/api/v1/jobs/"+st.ID+"/artifact")
	if code != http.StatusOK {
		t.Fatalf("artifact status %d", code)
	}
	if !bytes.Contains(art, []byte("leakage-report")) {
		t.Errorf("artifact does not look like a leakage report: %.80s", art)
	}
	// Repeat: trials are memoized too.
	st2 := waitTerminal(t, ts, submit(t, ts, req).ID)
	if st2.Cache.Misses != 0 {
		t.Errorf("repeat leakscan misses = %d, want 0", st2.Cache.Misses)
	}
}

func TestSubmitValidation(t *testing.T) {
	_, ts := newTestServer(t, nil)
	for name, body := range map[string]string{
		"empty type":      `{}`,
		"unknown type":    `{"type":"frob"}`,
		"unknown field":   `{"type":"sweep","frobnicate":1}`,
		"bad defense":     `{"type":"sweep","defenses":["NoSuch"]}`,
		"bad consistency": `{"type":"sweep","consistency":["XC"]}`,
		"bad kernel":      `{"type":"sweep","kernel":"warp"}`,
		"bad corpus":      `{"type":"leakscan","corpus":"giant"}`,
		"malformed":       `{"type":`,
	} {
		resp, err := http.Post(ts.URL+"/api/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
}

// TestEndpoints covers the remaining API and dashboard surface against a
// finished job.
func TestEndpoints(t *testing.T) {
	_, ts := newTestServer(t, func(o *Options) {
		o.Baseline = "../../BENCH_baseline.json"
		var sb strings.Builder
		o.LogWriter = &sb
	})
	st := submit(t, ts, smallSweep())
	st = waitTerminal(t, ts, st.ID)
	if st.State != StateDone {
		t.Fatalf("job state %s (error %q)", st.State, st.Error)
	}

	if code, _ := fetch(t, ts, "/api/v1/jobs/nope"); code != http.StatusNotFound {
		t.Errorf("unknown job: status %d, want 404", code)
	}
	if code, b := fetch(t, ts, "/healthz"); code != http.StatusOK || !bytes.Contains(b, []byte("ok")) {
		t.Errorf("healthz: %d %s", code, b)
	}

	// The sweep matrix differs from the committed full-suite baseline, so
	// the verdict exists (baseline configured) and reports its checks.
	code, vb := fetch(t, ts, "/api/v1/jobs/"+st.ID+"/verdict")
	if code != http.StatusOK {
		t.Fatalf("verdict status %d: %s", code, vb)
	}
	var verdict runner.DiffVerdict
	if err := json.Unmarshal(vb, &verdict); err != nil {
		t.Fatalf("decoding verdict: %v", err)
	}
	if verdict.Schema != runner.DiffSchema {
		t.Errorf("verdict schema %q", verdict.Schema)
	}

	// Job listing.
	code, lb := fetch(t, ts, "/api/v1/jobs")
	if code != http.StatusOK || !bytes.Contains(lb, []byte(st.ID)) {
		t.Errorf("list: %d, contains job: %v", code, bytes.Contains(lb, []byte(st.ID)))
	}

	// Dashboard pages.
	if code, b := fetch(t, ts, "/"); code != http.StatusOK || !bytes.Contains(b, []byte(st.ID)) {
		t.Errorf("dashboard index: %d, job visible: %v", code, bytes.Contains(b, []byte(st.ID)))
	}
	code, jb := fetch(t, ts, "/jobs/"+st.ID)
	if code != http.StatusOK || !bytes.Contains(jb, []byte("Normalized execution time")) {
		t.Errorf("job page: %d, has matrix: %v", code, bytes.Contains(jb, []byte("Normalized execution time")))
	}
	cellKey := fmt.Sprintf("bzip2/Base/TSO/seed0")
	code, db := fetch(t, ts, "/jobs/"+st.ID+"?cell="+cellKey)
	if code != http.StatusOK || !bytes.Contains(db, []byte("Cell "+cellKey)) {
		t.Errorf("drilldown: %d, has cell pane: %v", code, bytes.Contains(db, []byte("Cell "+cellKey)))
	}
}
