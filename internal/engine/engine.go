// Package engine is the simulation kernel: it owns the global clock and the
// order in which simulated components observe it. Two interchangeable
// steppers implement the same contract:
//
//   - ReferenceStepper is the seed's cycle-by-cycle loop: every component is
//     ticked on every cycle, in registration order. It is the golden model.
//   - Scheduler is the quiescence-aware fast-forward kernel: components are
//     still ticked in the same fixed order, but when every component reports
//     a future (or unknown-free) wake cycle, the clock jumps straight to the
//     earliest of them. Skipped cycles are reported to IdleSkipper components
//     so per-cycle accounting (core cycle counters, stall counters) advances
//     by exactly the number of cycles skipped.
//
// Determinism argument: a jump from cycle T to cycle W is performed only when
// no component can do non-trivial work in (T, W) — NextWake contracts below.
// Since simulated state is then constant over the open interval, ticking the
// components at W produces the same state the reference stepper reaches by
// ticking every cycle of (T, W]; the only per-cycle side effects in that
// window are bulk-accountable counters, which SkipIdle replays. The callers
// (internal/sim) additionally cap every jump at external boundaries that
// carry their own side effects: the cycle budget, and the invariant-checker
// sweep stride — so sweeps, watchdog windows, and budget errors observe
// identical cycles under both kernels.
package engine

import "fmt"

// Never is the NextWake value meaning "this component will do no further
// work unless some other component's activity feeds it" (e.g. a core blocked
// on an outstanding memory response, which the hierarchy's own NextWake
// bounds).
const Never = ^uint64(0)

// Component is one simulated unit on the kernel's clock.
type Component interface {
	// Tick advances the component to cycle now. The kernel guarantees now is
	// strictly increasing across calls and that all components are ticked at
	// the same cycles, in registration order.
	Tick(now uint64)

	// NextWake returns the earliest cycle > now at which the component could
	// perform non-trivial work, given that no other component acts before
	// then. Contract:
	//   - a return of now+1 (or anything <= now+1) means "busy or unknown":
	//     the kernel must not skip any cycles;
	//   - a return of W > now+1 asserts the component's observable state is
	//     constant over cycles (now, W) — ticking it anywhere in that open
	//     interval would be a no-op apart from bulk-accountable counters;
	//   - Never means the component is waiting on external input only.
	// NextWake must be side-effect-free: the reference stepper never calls it.
	NextWake(now uint64) uint64
}

// IdleSkipper is implemented by components with per-cycle accounting (cycle
// counters, stall counters) that must advance even across skipped cycles.
// SkipIdle(k) is called before the tick that lands a jump, with k = number
// of cycles skipped (the jump width minus the one cycle the tick itself
// accounts for).
type IdleSkipper interface {
	SkipIdle(cycles uint64)
}

// Kernel selects a stepper implementation.
type Kernel int

// Kernels.
const (
	// KernelFast is the quiescence-aware fast-forward scheduler (default).
	KernelFast Kernel = iota
	// KernelStepped is the seed's cycle-by-cycle reference stepper.
	KernelStepped
)

// String names the kernel the way the -kernel flag spells it.
func (k Kernel) String() string {
	switch k {
	case KernelFast:
		return "fast"
	case KernelStepped:
		return "stepped"
	}
	return fmt.Sprintf("Kernel(%d)", int(k))
}

// ParseKernel parses a -kernel flag value.
func ParseKernel(s string) (Kernel, error) {
	switch s {
	case "fast":
		return KernelFast, nil
	case "stepped":
		return KernelStepped, nil
	}
	return 0, fmt.Errorf("unknown kernel %q (want stepped or fast)", s)
}

// Stepper advances the clock for a fixed set of components.
type Stepper interface {
	// Now returns the current cycle (the cycle of the last tick).
	Now() uint64
	// StepTo advances time by at least one cycle and at most to cycle limit,
	// returning the new current cycle. The reference stepper always advances
	// exactly one cycle; the fast scheduler may land anywhere in
	// [now+1, limit]. Callers encode external side-effect boundaries (budget,
	// checker stride) by capping limit.
	StepTo(limit uint64) uint64
}

// NewStepper builds the stepper for the chosen kernel, starting at cycle
// start (the first tick happens at start+1). Components are ticked in the
// given order every landed cycle.
func NewStepper(k Kernel, start uint64, comps ...Component) Stepper {
	if k == KernelStepped {
		return &ReferenceStepper{now: start, comps: comps}
	}
	s := &Scheduler{now: start, comps: comps}
	for _, c := range comps {
		if sk, ok := c.(IdleSkipper); ok {
			s.skippers = append(s.skippers, sk)
		}
	}
	return s
}

// ReferenceStepper is the golden cycle-by-cycle kernel: one tick per call,
// NextWake never consulted. It is byte-for-byte the seed's sim loop and the
// correctness oracle the fast scheduler is tested against.
type ReferenceStepper struct {
	now   uint64
	comps []Component
}

// Now returns the current cycle.
func (s *ReferenceStepper) Now() uint64 { return s.now }

// StepTo ticks every component at now+1 (limit is ignored beyond the
// contract's minimum advance).
func (s *ReferenceStepper) StepTo(limit uint64) uint64 {
	s.now++
	for _, c := range s.comps {
		c.Tick(s.now)
	}
	return s.now
}

// Scheduler is the quiescence-aware fast-forward kernel.
type Scheduler struct {
	now      uint64
	comps    []Component
	skippers []IdleSkipper

	jumps   uint64
	skipped uint64
}

// Now returns the current cycle.
func (s *Scheduler) Now() uint64 { return s.now }

// SkipStats reports how many jumps the scheduler performed and how many idle
// cycles they skipped in total (diagnostics; the counters are not part of
// simulated state).
func (s *Scheduler) SkipStats() (jumps, skippedCycles uint64) {
	return s.jumps, s.skipped
}

// StepTo advances to min(earliest wake, limit), ticking components once at
// the landing cycle. When no component reports a wake before limit, the
// clock lands on limit itself (external boundaries — budget, checker sweep —
// carry side effects of their own and must be observed exactly).
func (s *Scheduler) StepTo(limit uint64) uint64 {
	next := s.now + 1
	if limit > next {
		wake := Never
		for _, c := range s.comps {
			if w := c.NextWake(s.now); w < wake {
				wake = w
			}
			if wake <= next {
				wake = next
				break
			}
		}
		if wake > limit {
			wake = limit
		}
		if wake > next {
			k := wake - next
			for _, sk := range s.skippers {
				sk.SkipIdle(k)
			}
			s.jumps++
			s.skipped += k
			next = wake
		}
	}
	s.now = next
	for _, c := range s.comps {
		c.Tick(next)
	}
	return s.now
}
