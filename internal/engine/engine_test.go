package engine

import "testing"

// fakeComp scripts a NextWake schedule and records every tick and skip.
type fakeComp struct {
	wake    func(now uint64) uint64
	ticks   []uint64
	skipped uint64
}

func (f *fakeComp) Tick(now uint64)            { f.ticks = append(f.ticks, now) }
func (f *fakeComp) NextWake(now uint64) uint64 { return f.wake(now) }
func (f *fakeComp) SkipIdle(k uint64)          { f.skipped += k }

func busy(uint64) uint64 { return 0 } // <= now+1: never skip

func TestReferenceStepperTicksEveryCycle(t *testing.T) {
	c := &fakeComp{wake: func(uint64) uint64 { t.Fatal("reference stepper consulted NextWake"); return 0 }}
	s := NewStepper(KernelStepped, 0, c)
	for i := 0; i < 5; i++ {
		s.StepTo(1000) // limit far away: still single-cycle
	}
	if s.Now() != 5 || len(c.ticks) != 5 {
		t.Fatalf("now=%d ticks=%v", s.Now(), c.ticks)
	}
	for i, cy := range c.ticks {
		if cy != uint64(i+1) {
			t.Fatalf("tick %d at cycle %d", i, cy)
		}
	}
}

func TestSchedulerJumpsToEarliestWake(t *testing.T) {
	a := &fakeComp{wake: func(now uint64) uint64 { return 100 }}
	b := &fakeComp{wake: func(now uint64) uint64 { return 40 }}
	s := NewStepper(KernelFast, 0, a, b)
	if got := s.StepTo(1000); got != 40 {
		t.Fatalf("landed at %d, want 40 (min wake)", got)
	}
	// Both components ticked exactly once, at the landing cycle, and both
	// were credited the 39 skipped cycles.
	for _, c := range []*fakeComp{a, b} {
		if len(c.ticks) != 1 || c.ticks[0] != 40 {
			t.Fatalf("ticks=%v, want [40]", c.ticks)
		}
		if c.skipped != 39 {
			t.Fatalf("skipped=%d, want 39", c.skipped)
		}
	}
}

func TestSchedulerBusyComponentBlocksJump(t *testing.T) {
	idle := &fakeComp{wake: func(now uint64) uint64 { return Never }}
	bz := &fakeComp{wake: busy}
	s := NewStepper(KernelFast, 0, idle, bz)
	if got := s.StepTo(1000); got != 1 {
		t.Fatalf("landed at %d, want 1 (busy component)", got)
	}
	if idle.skipped != 0 || bz.skipped != 0 {
		t.Fatalf("skip credited on a non-jump: %d/%d", idle.skipped, bz.skipped)
	}
}

func TestSchedulerCapsAtLimit(t *testing.T) {
	c := &fakeComp{wake: func(now uint64) uint64 { return Never }}
	s := NewStepper(KernelFast, 10, c)
	if got := s.StepTo(64); got != 64 {
		t.Fatalf("landed at %d, want limit 64", got)
	}
	if c.skipped != 53 { // 64 - 11
		t.Fatalf("skipped=%d, want 53", c.skipped)
	}
	// A wake before the limit wins over the limit.
	c2 := &fakeComp{wake: func(now uint64) uint64 { return now + 7 }}
	s2 := NewStepper(KernelFast, 0, c2)
	if got := s2.StepTo(64); got != 7 {
		t.Fatalf("landed at %d, want 7", got)
	}
}

func TestSchedulerMinimumAdvance(t *testing.T) {
	c := &fakeComp{wake: func(now uint64) uint64 { return Never }}
	s := NewStepper(KernelFast, 10, c)
	// limit <= now+1: exactly one cycle, no skip accounting.
	if got := s.StepTo(5); got != 11 {
		t.Fatalf("landed at %d, want 11", got)
	}
	if c.skipped != 0 {
		t.Fatalf("skipped=%d, want 0", c.skipped)
	}
}

func TestSchedulerDeterministicTickOrder(t *testing.T) {
	var order []int
	mk := func(id int) Component {
		return &orderComp{id: id, order: &order}
	}
	s := NewStepper(KernelFast, 0, mk(0), mk(1), mk(2))
	s.StepTo(100)
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("tick order %v, want [0 1 2]", order)
	}
}

type orderComp struct {
	id    int
	order *[]int
}

func (o *orderComp) Tick(uint64)            { *o.order = append(*o.order, o.id) }
func (o *orderComp) NextWake(uint64) uint64 { return Never }

func TestSkipStats(t *testing.T) {
	c := &fakeComp{wake: func(now uint64) uint64 { return now + 10 }}
	s := NewStepper(KernelFast, 0, c).(*Scheduler)
	s.StepTo(1000)
	s.StepTo(1000)
	jumps, skipped := s.SkipStats()
	if jumps != 2 || skipped != 18 { // 9 skipped per jump
		t.Fatalf("jumps=%d skipped=%d, want 2/18", jumps, skipped)
	}
}

func TestKernelParseAndString(t *testing.T) {
	for _, k := range []Kernel{KernelFast, KernelStepped} {
		got, err := ParseKernel(k.String())
		if err != nil || got != k {
			t.Fatalf("round-trip %v: got %v err %v", k, got, err)
		}
	}
	if _, err := ParseKernel("warp"); err == nil {
		t.Fatal("ParseKernel accepted garbage")
	}
}
