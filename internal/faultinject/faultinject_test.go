package faultinject

import "testing"

// Same seed, same call sequence -> identical perturbations.
func TestDeterministic(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 10000; i++ {
		now := uint64(i * 3)
		del := now + 17
		if ra, rb := a.NoCDeliver(now, del), b.NoCDeliver(now, del); ra != rb {
			t.Fatalf("call %d: NoCDeliver diverged: %d vs %d", i, ra, rb)
		}
		if ra, rb := a.DRAMReady(now, del+100), b.DRAMReady(now, del+100); ra != rb {
			t.Fatalf("call %d: DRAMReady diverged: %d vs %d", i, ra, rb)
		}
	}
	if a.Stats() != b.Stats() {
		t.Fatalf("stats diverged: %+v vs %+v", a.Stats(), b.Stats())
	}
}

// Different seeds should actually perturb differently (sanity: the seed is
// wired through).
func TestSeedMatters(t *testing.T) {
	a, b := New(1), New(2)
	same := true
	for i := 0; i < 1000 && same; i++ {
		now := uint64(i)
		same = a.NoCDeliver(now, now+17) == b.NoCDeliver(now, now+17)
	}
	if same {
		t.Fatal("seeds 1 and 2 produced identical perturbation streams")
	}
}

// Perturbed cycles must never precede the nominal ones (the monotonicity
// contract memsys relies on to never reorder a transaction's timeline).
func TestNeverEarly(t *testing.T) {
	in := New(7)
	for i := 0; i < 100000; i++ {
		now := uint64(i)
		del := now + uint64(i%40)
		if got := in.NoCDeliver(now, del); got < del {
			t.Fatalf("NoCDeliver returned %d before nominal %d", got, del)
		}
		rdy := now + uint64(i%200)
		if got := in.DRAMReady(now, rdy); got < rdy {
			t.Fatalf("DRAMReady returned %d before nominal %d", got, rdy)
		}
	}
}

// With drop probability 1 the backoff must still cap: timeout doubles per
// retry and retries stop at NoCMaxRetries, bounding worst-case added latency.
func TestDropBackoffCapped(t *testing.T) {
	cfg := Config{NoCDropProb: 1, NoCRetryTimeout: 50, NoCMaxRetries: 4}
	in := NewWithConfig(1, cfg)
	// 50 + 100 + 200 + 400 = 750 worst case.
	const worst = 750
	got := in.NoCDeliver(0, 10)
	if got != 10+worst {
		t.Fatalf("expected full backoff %d, got %d", 10+worst, got-10)
	}
	if in.Stats().NoCDrops != 4 {
		t.Fatalf("expected 4 drop events, got %d", in.Stats().NoCDrops)
	}
}

// A zero config is a no-op injector.
func TestZeroConfigNoOp(t *testing.T) {
	in := NewWithConfig(9, Config{})
	for i := uint64(0); i < 1000; i++ {
		if got := in.NoCDeliver(i, i+5); got != i+5 {
			t.Fatalf("zero config perturbed NoC: %d != %d", got, i+5)
		}
		if got := in.DRAMReady(i, i+9); got != i+9 {
			t.Fatalf("zero config perturbed DRAM: %d != %d", got, i+9)
		}
	}
	if s := in.Stats(); s != (Stats{}) {
		t.Fatalf("zero config counted faults: %+v", s)
	}
}

// Default rates actually fire all three fault classes over a realistic call
// volume.
func TestDefaultRatesFire(t *testing.T) {
	in := New(3)
	for i := uint64(0); i < 10000; i++ {
		in.NoCDeliver(i, i+12)
		in.DRAMReady(i, i+80)
	}
	s := in.Stats()
	if s.NoCDelays == 0 || s.NoCDrops == 0 || s.DRAMDelays == 0 {
		t.Fatalf("default config left a fault class idle: %+v", s)
	}
	if s.MaxSlip == 0 {
		t.Fatal("MaxSlip not tracked")
	}
}
