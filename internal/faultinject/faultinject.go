// Package faultinject perturbs the memory hierarchy's timing
// deterministically, for robustness testing of the simulator itself.
//
// The simulator computes each transaction's timeline up front from component
// latencies, so a "fault" cannot remove a message from the system without
// losing the transaction. Instead, every fault is modelled as a pure delay
// transformation on a completion cycle:
//
//   - extra NoC latency: a message's delivery slips by a bounded random
//     number of cycles (congestion, a slow virtual channel);
//   - a NoC drop: the message is lost and retransmitted after a timeout,
//     with capped exponential backoff across consecutive drops;
//   - DRAM timing noise: a access's data-ready cycle slips (refresh
//     collisions, bank conflicts beyond the fixed model).
//
// Delays stretch but never reorder a transaction's internal timeline (the
// perturbed cycle is never before the nominal one), so every protocol
// invariant that holds without faults must keep holding with them — which is
// exactly what internal/invariant verifies under the litmus and stress
// suites.
//
// All randomness comes from a single seeded math/rand source consumed in
// simulation order, so a given (config, workload, seed) triple perturbs
// identically on every run: failures reproduce.
//
// Injector implements memsys.FaultInjector structurally; this package
// imports nothing from the simulator.
package faultinject

import "math/rand"

// Config sets fault rates and magnitudes. Probabilities are in [0,1] and
// evaluated independently per message / access.
type Config struct {
	// NoCDelayProb is the chance a mesh message sees extra latency of
	// 1..NoCDelayMax cycles (uniform).
	NoCDelayProb float64
	NoCDelayMax  uint64
	// NoCDropProb is the chance a mesh message is dropped and retransmitted
	// after a timeout of NoCRetryTimeout cycles. Consecutive drops of the
	// same message double the timeout up to NoCMaxRetries times, after which
	// the retransmission is assumed to get through (the backoff cap keeps
	// worst-case added latency bounded and the simulation deadlock-free).
	NoCDropProb     float64
	NoCRetryTimeout uint64
	NoCMaxRetries   int
	// DRAMDelayProb is the chance a DRAM access's data-ready cycle slips by
	// 1..DRAMDelayMax cycles (uniform).
	DRAMDelayProb float64
	DRAMDelayMax  uint64
}

// DefaultConfig returns moderate fault rates: frequent small NoC jitter,
// occasional drops, and DRAM noise. Suitable for the litmus/stress suites.
func DefaultConfig() Config {
	return Config{
		NoCDelayProb:    0.10,
		NoCDelayMax:     20,
		NoCDropProb:     0.01,
		NoCRetryTimeout: 50,
		NoCMaxRetries:   4,
		DRAMDelayProb:   0.05,
		DRAMDelayMax:    100,
	}
}

// Stats counts injected faults.
type Stats struct {
	NoCDelays  uint64
	NoCDrops   uint64 // individual drop events (a message can drop repeatedly)
	DRAMDelays uint64
	// MaxSlip is the largest single perturbation applied, in cycles.
	MaxSlip uint64
}

// Injector is a deterministic, seeded fault source. It is not safe for
// concurrent use; the simulator is single-threaded per machine.
type Injector struct {
	cfg Config
	rng *rand.Rand
	st  Stats
}

// New returns an injector with DefaultConfig and the given seed.
func New(seed int64) *Injector { return NewWithConfig(seed, DefaultConfig()) }

// NewWithConfig returns an injector with explicit rates.
func NewWithConfig(seed int64, cfg Config) *Injector {
	return &Injector{cfg: cfg, rng: rand.New(rand.NewSource(seed))}
}

// Stats returns the fault counts so far.
func (in *Injector) Stats() Stats { return in.st }

func (in *Injector) note(slip uint64) {
	if slip > in.st.MaxSlip {
		in.st.MaxSlip = slip
	}
}

// NoCDeliver perturbs a mesh message's delivery cycle. Part of the
// memsys.FaultInjector contract: the result is never before deliver.
func (in *Injector) NoCDeliver(now, deliver uint64) uint64 {
	out := deliver
	// Drop-and-retransmit with capped exponential backoff. Each retry is
	// itself subject to dropping, up to the cap.
	if in.cfg.NoCDropProb > 0 {
		timeout := in.cfg.NoCRetryTimeout
		for try := 0; try < in.cfg.NoCMaxRetries; try++ {
			if in.rng.Float64() >= in.cfg.NoCDropProb {
				break
			}
			in.st.NoCDrops++
			out += timeout
			timeout *= 2
		}
	}
	if in.cfg.NoCDelayProb > 0 && in.rng.Float64() < in.cfg.NoCDelayProb {
		in.st.NoCDelays++
		out += 1 + uint64(in.rng.Int63n(int64(in.cfg.NoCDelayMax)))
	}
	in.note(out - deliver)
	return out
}

// DRAMReady perturbs a DRAM access's data-ready cycle. Part of the
// memsys.FaultInjector contract: the result is never before ready.
func (in *Injector) DRAMReady(now, ready uint64) uint64 {
	out := ready
	if in.cfg.DRAMDelayProb > 0 && in.rng.Float64() < in.cfg.DRAMDelayProb {
		in.st.DRAMDelays++
		out += 1 + uint64(in.rng.Int63n(int64(in.cfg.DRAMDelayMax)))
	}
	in.note(out - ready)
	return out
}
