package dram

import "testing"

func TestReadLatency(t *testing.T) {
	d := New(100, 16)
	// 64-byte line: 4 cycles of channel occupancy + 100 latency.
	if got := d.Read(1000, 64); got != 1100 {
		t.Fatalf("read done = %d, want 1100", got)
	}
	if d.Reads != 1 {
		t.Fatalf("reads = %d", d.Reads)
	}
}

func TestChannelContention(t *testing.T) {
	d := New(100, 16)
	a := d.Read(0, 64) // occupies channel cycles 0..3
	b := d.Read(0, 64) // must start at 4
	if a != 100 || b != 104 {
		t.Fatalf("contended reads at %d, %d; want 100, 104", a, b)
	}
}

func TestWriteIsPostedButOccupiesChannel(t *testing.T) {
	d := New(100, 16)
	if acc := d.Write(0, 64); acc != 0 {
		t.Fatalf("write accepted at %d, want 0", acc)
	}
	if got := d.Read(0, 64); got != 104 {
		t.Fatalf("read after write done = %d, want 104", got)
	}
	if d.Writes != 1 {
		t.Fatalf("writes = %d", d.Writes)
	}
}

func TestIdleChannelRecovers(t *testing.T) {
	d := New(100, 16)
	d.Read(0, 64)
	if got := d.Read(1000, 64); got != 1100 {
		t.Fatalf("idle-channel read = %d, want 1100", got)
	}
}

func TestNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1, 0) did not panic")
		}
	}()
	New(-1, 0)
}
