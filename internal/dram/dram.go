// Package dram models main memory as a fixed-latency, bandwidth-limited
// channel: 50 ns round trip after the L2 (100 cycles at 2 GHz) plus
// serialization at the channel's bytes-per-cycle rate.
package dram

import "fmt"

// DRAM is one memory channel.
type DRAM struct {
	latency   uint64
	bandwidth int // bytes per cycle
	chanFree  uint64

	Reads  uint64
	Writes uint64
}

// New builds a channel with the given access latency (cycles) and bandwidth
// (bytes/cycle).
func New(latency, bandwidth int) *DRAM {
	if latency < 0 || bandwidth <= 0 {
		panic(fmt.Sprintf("dram: bad parameters latency=%d bandwidth=%d", latency, bandwidth))
	}
	return &DRAM{latency: uint64(latency), bandwidth: bandwidth}
}

func (d *DRAM) occupy(now uint64, bytes int) uint64 {
	start := now
	if d.chanFree > start {
		start = d.chanFree
	}
	ser := uint64((bytes + d.bandwidth - 1) / d.bandwidth)
	d.chanFree = start + ser
	return start
}

// Read starts a line read of the given size at cycle now and returns the
// cycle the data is available.
func (d *DRAM) Read(now uint64, bytes int) (done uint64) {
	d.Reads++
	return d.occupy(now, bytes) + d.latency
}

// Write starts a line writeback; writes are posted (the caller need not wait)
// but still occupy channel bandwidth. The returned cycle is when the channel
// accepted the data.
func (d *DRAM) Write(now uint64, bytes int) (accepted uint64) {
	d.Writes++
	return d.occupy(now, bytes)
}
