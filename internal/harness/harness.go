// Package harness runs measured simulations the way the paper's evaluation
// does: each workload executes under a processor configuration for a warmup
// instruction budget (analogous to the paper's 10B-instruction skip), then
// counters are snapshotted and the measured window runs (analogous to the
// paper's 1B-instruction window). Figures 4–8 and Table VI are all
// computed from the deltas this package reports.
package harness

import (
	"context"
	"fmt"

	"invisispec/internal/config"
	"invisispec/internal/core"
	"invisispec/internal/engine"
	"invisispec/internal/invariant"
	"invisispec/internal/isa"
	"invisispec/internal/sim"
	"invisispec/internal/stats"
	"invisispec/internal/trace"
	"invisispec/internal/workload"
)

// Option tunes a Measure run (hardening hooks; the default is the plain
// measurement the figures use).
type Option func(*measureOpts)

type measureOpts struct {
	check     *invariant.Options
	faultSeed *int64
	ctx       context.Context
	kernel    *engine.Kernel
}

// WithChecking enables the invariant checker and forward-progress watchdog
// for both windows (see internal/invariant).
func WithChecking(o invariant.Options) Option {
	return func(m *measureOpts) { m.check = &o }
}

// WithFaultSeed enables deterministic fault injection (see
// internal/faultinject) with the given seed.
func WithFaultSeed(seed int64) Option {
	return func(m *measureOpts) { m.faultSeed = &seed }
}

// WithContext attaches a context to the run: both windows poll it
// cooperatively (every sim.ctxCheckStride cycles) and a cancelled or expired
// context aborts the measurement with an error wrapping ctx.Err(). The
// parallel runner uses this for per-job wall-clock timeouts and sweep-wide
// cancellation; cancellation never perturbs the simulated state, only when
// the loop stops.
func WithContext(ctx context.Context) Option {
	return func(m *measureOpts) { m.ctx = ctx }
}

// WithKernel selects the simulation kernel (see internal/engine): the
// quiescence-aware fast-forward scheduler (the default) or the cycle-by-cycle
// reference stepper. The two produce byte-identical measurements — the
// kernel-equivalence tests enforce it — so this option only changes host
// wall-time; benchtable's -comparekernels mode uses it to record the
// speedup.
func WithKernel(k engine.Kernel) Option {
	return func(m *measureOpts) { m.kernel = &k }
}

// testPanicHook, when non-nil, runs inside Measure's recovery scope. The
// panic path exists to salvage diagnostics from simulator bugs, which tests
// cannot trigger on demand; the hook makes the recovery itself testable.
var testPanicHook func()

// budgetPerInstruction sizes the cycle budget per requested instruction: no
// workload in the suite exceeds a sustained CPI of 600, so exhaustion means
// the simulator (not the workload) stopped making progress. Tests shrink it
// to exercise the budget-error path.
var budgetPerInstruction uint64 = 600

// Result is one measured run.
type Result struct {
	Run      config.Run
	Workload string
	// Measured-window deltas.
	Cycles       uint64
	Instructions uint64
	Traffic      [stats.NumTrafficClasses]uint64
	Core         stats.Core // summed across cores
	DRAMReads    uint64
	LLCSBRate    float64 // LLC-SB hit rate over validations+exposures
}

// CPI returns measured cycles per instruction.
func (r Result) CPI() float64 {
	if r.Instructions == 0 {
		return 0
	}
	return float64(r.Cycles) / float64(r.Instructions)
}

// TotalTraffic returns measured bytes moved.
func (r Result) TotalTraffic() uint64 {
	var t uint64
	for _, v := range r.Traffic {
		t += v
	}
	return t
}

// Measure runs progs under run for warmup+measure retired instructions and
// returns the measured-window deltas. Every error (and recovered panic) is
// annotated with the workload name, the run configuration, and which window
// — warmup or measure — it happened in, so a failing sweep pinpoints the
// offending run without rerunning. A panic inside the simulator is converted
// into an error carrying the cycle number and the full machine dump.
func Measure(run config.Run, name string, progs []*isa.Program, warmup, measure uint64, opts ...Option) (res Result, err error) {
	var mo measureOpts
	for _, o := range opts {
		o(&mo)
	}
	ctx := func(window string) string {
		return fmt.Sprintf("%s [%v/%v] %s window", name, run.Defense, run.Consistency, window)
	}
	m, err := sim.New(run, progs)
	if err != nil {
		return Result{}, fmt.Errorf("%s [%v/%v] setup: %w", name, run.Defense, run.Consistency, err)
	}
	if mo.kernel != nil {
		m.SetKernel(*mo.kernel)
	}
	if mo.faultSeed != nil {
		m.SeedFaults(*mo.faultSeed)
	}
	if mo.check != nil {
		m.EnableChecking(*mo.check)
	}
	window := "warmup"
	defer func() {
		if r := recover(); r != nil {
			t := &invariant.Target{Cycle: m.Cycle(), Run: run, Cores: m.Cores, Hier: m.Hier}
			t.FFJumps, t.FFSkipped = m.FastForwardStats()
			dump := invariant.Dump(t)
			err = fmt.Errorf("%s: panic at cycle %d: %v\n%s", ctx(window), m.Cycle(), r, dump)
		}
	}()
	if testPanicHook != nil {
		testPanicHook()
	}
	runCtx := mo.ctx
	if runCtx == nil {
		runCtx = context.Background()
	}
	budget := (warmup + measure) * budgetPerInstruction
	if err := m.RunInstructionsCtx(runCtx, warmup, budget); err != nil {
		return Result{}, fmt.Errorf("%s: %w", ctx("warmup"), err)
	}
	startCycles := m.Cycle()
	startCore := m.Stats.Sum()
	startTraffic := m.Stats.TrafficBytes
	startDRAM := m.Stats.DRAMReads
	window = "measure"
	if err := m.RunInstructionsCtx(runCtx, warmup+measure, budget); err != nil {
		return Result{}, fmt.Errorf("%s: %w", ctx("measure"), err)
	}
	r := Result{
		Run:      run,
		Workload: name,
		Cycles:   m.Cycle() - startCycles,
		Core:     m.Stats.Sum().Sub(startCore),
	}
	r.Instructions = r.Core.Retired
	for i := range r.Traffic {
		r.Traffic[i] = m.Stats.TrafficBytes[i] - startTraffic[i]
	}
	r.DRAMReads = m.Stats.DRAMReads - startDRAM
	if ve := r.Core.LLCSBHits + r.Core.LLCSBMisses; ve > 0 {
		r.LLCSBRate = float64(r.Core.LLCSBHits) / float64(ve)
	}
	return r, nil
}

// Complete runs progs under run until every core halts (or maxCycles
// elapse), with the same option surface as Measure — invariant checking,
// deterministic fault injection, cooperative context cancellation — plus
// the same panic recovery and error annotation. It returns the finished
// machine so callers can extract results from its functional memory; the
// leakage scanner (internal/leakage) reads the attacker's per-probe-line
// latencies this way.
func Complete(run config.Run, name string, progs []*isa.Program, maxCycles uint64, opts ...Option) (m *sim.Machine, err error) {
	var mo measureOpts
	for _, o := range opts {
		o(&mo)
	}
	m, err = sim.New(run, progs)
	if err != nil {
		return nil, fmt.Errorf("%s [%v/%v] setup: %w", name, run.Defense, run.Consistency, err)
	}
	if mo.kernel != nil {
		m.SetKernel(*mo.kernel)
	}
	if mo.faultSeed != nil {
		m.SeedFaults(*mo.faultSeed)
	}
	if mo.check != nil {
		m.EnableChecking(*mo.check)
	}
	defer func() {
		if r := recover(); r != nil {
			cycle := m.Cycle()
			t := &invariant.Target{Cycle: cycle, Run: run, Cores: m.Cores, Hier: m.Hier}
			t.FFJumps, t.FFSkipped = m.FastForwardStats()
			dump := invariant.Dump(t)
			m = nil
			err = fmt.Errorf("%s [%v/%v]: panic at cycle %d: %v\n%s", name, run.Defense, run.Consistency, cycle, r, dump)
		}
	}()
	if testPanicHook != nil {
		testPanicHook()
	}
	runCtx := mo.ctx
	if runCtx == nil {
		runCtx = context.Background()
	}
	if err := m.RunToCompletionCtx(runCtx, maxCycles); err != nil {
		return nil, fmt.Errorf("%s [%v/%v]: %w", name, run.Defense, run.Consistency, err)
	}
	return m, nil
}

// Record runs progs under run until every core has committed n
// instructions (or the machine halts, whichever is first) and returns the
// per-core committed streams as a replayable trace. It shares Measure's
// option surface — kernel selection matters here because the recorded
// cycles are kernel-independent only because the equivalence oracle makes
// them so; Record under both kernels is how the trace tests check that.
func Record(run config.Run, name string, progs []*isa.Program, n uint64, opts ...Option) (t *trace.Trace, err error) {
	var mo measureOpts
	for _, o := range opts {
		o(&mo)
	}
	m, err := sim.New(run, progs)
	if err != nil {
		return nil, fmt.Errorf("%s [%v/%v] setup: %w", name, run.Defense, run.Consistency, err)
	}
	if mo.kernel != nil {
		m.SetKernel(*mo.kernel)
	}
	if mo.faultSeed != nil {
		m.SeedFaults(*mo.faultSeed)
	}
	if mo.check != nil {
		m.EnableChecking(*mo.check)
	}
	defer func() {
		if r := recover(); r != nil {
			cycle := m.Cycle()
			tg := &invariant.Target{Cycle: cycle, Run: run, Cores: m.Cores, Hier: m.Hier}
			tg.FFJumps, tg.FFSkipped = m.FastForwardStats()
			dump := invariant.Dump(tg)
			t = nil
			err = fmt.Errorf("%s [%v/%v]: panic at cycle %d: %v\n%s", name, run.Defense, run.Consistency, cycle, r, dump)
		}
	}()
	events := make([][]trace.Event, len(progs))
	full := 0
	for i := range m.Cores {
		i := i
		m.Cores[i].SetTracer(func(ev core.CommitEvent) {
			if uint64(len(events[i])) < n {
				events[i] = append(events[i], trace.FromCommit(ev))
				if uint64(len(events[i])) == n {
					full++
				}
			}
		})
	}
	runCtx := mo.ctx
	if runCtx == nil {
		runCtx = context.Background()
	}
	// Constant headroom on top of the per-instruction budget so very short
	// recordings (conformance reproducers) still cover pipeline fill.
	budget := 100_000 + n*uint64(len(progs))*budgetPerInstruction
	if err := m.RunInstructionsCtx(runCtx, n*uint64(len(progs)), budget); err != nil {
		return nil, fmt.Errorf("%s [%v/%v] record: %w", name, run.Defense, run.Consistency, err)
	}
	// Unbalanced multi-core progress can leave some cores short of n while
	// the retired total is already met; top off one milestone at a time.
	for full < len(progs) && !m.Done() {
		if m.Cycle() >= budget {
			break
		}
		if err := m.RunInstructionsCtx(runCtx, m.Stats.TotalRetired()+1, budget); err != nil {
			return nil, fmt.Errorf("%s [%v/%v] record: %w", name, run.Defense, run.Consistency, err)
		}
	}
	return &trace.Trace{Name: name, Programs: progs, Events: events}, nil
}

// MeasureWorkload measures any registered workload on its default machine
// size: 1 core for the SPEC kernels and attack programs, 8 for PARSEC,
// the recorded width for imported traces. It is the single resolution
// path the runner, campaign executor, and CLIs share — the per-matrix
// SPEC/PARSEC dispatch lives in the registry now, not at call sites.
func MeasureWorkload(name string, d config.Defense, cm config.Consistency, warmup, measure uint64, opts ...Option) (Result, error) {
	w, err := workload.Lookup(name)
	if err != nil {
		return Result{}, err
	}
	cores := w.DefaultCores()
	progs, err := w.Programs(cores)
	if err != nil {
		return Result{}, err
	}
	run := config.Run{Machine: config.Default(cores), Defense: d, Consistency: cm}
	return Measure(run, name, progs, warmup, measure, opts...)
}

// MeasureSPEC measures one SPEC-like kernel on the 1-core machine.
func MeasureSPEC(name string, d config.Defense, cm config.Consistency, warmup, measure uint64, opts ...Option) (Result, error) {
	prog, err := workload.SPEC(name)
	if err != nil {
		return Result{}, err
	}
	run := config.Run{Machine: config.Default(1), Defense: d, Consistency: cm}
	return Measure(run, name, []*isa.Program{prog}, warmup, measure, opts...)
}

// MeasurePARSEC measures one PARSEC-like kernel on the 8-core machine.
func MeasurePARSEC(name string, d config.Defense, cm config.Consistency, warmup, measure uint64, opts ...Option) (Result, error) {
	progs, err := workload.PARSEC(name, 8)
	if err != nil {
		return Result{}, err
	}
	run := config.Run{Machine: config.Default(8), Defense: d, Consistency: cm}
	return Measure(run, name, progs, warmup, measure, opts...)
}

// Sweep runs one workload under every registered defense scheme for a
// consistency model and returns results keyed by defense.
//
// Sweep is the serial reference implementation: it runs one job at a time in
// defense order on the calling goroutine. The figure generators and benches
// go through internal/runner instead, which shards the same jobs across a
// worker pool; runner's determinism tests assert its aggregated output is
// byte-identical to what this function produces.
// The parsec flag is identity metadata only (it names the figure axis in
// artifacts and journals); the registry decides the machine size.
func Sweep(name string, parsec bool, cm config.Consistency, warmup, measure uint64) (map[config.Defense]Result, error) {
	_ = parsec
	out := make(map[config.Defense]Result, len(config.AllDefenses()))
	for _, d := range config.AllDefenses() {
		r, err := MeasureWorkload(name, d, cm, warmup, measure)
		if err != nil {
			return nil, fmt.Errorf("%s/%s: %w", name, d, err)
		}
		out[d] = r
	}
	return out, nil
}

// NormalizedTime returns each defense's execution-time slowdown relative to
// Base for the same amount of work (Figures 4 and 7 bars).
func NormalizedTime(res map[config.Defense]Result) map[config.Defense]float64 {
	out := make(map[config.Defense]float64, len(res))
	base := res[config.Base].CPI()
	for d, r := range res {
		out[d] = r.CPI() / base
	}
	return out
}

// NormalizedTraffic returns each defense's bytes-per-instruction relative
// to Base (Figures 6 and 8 bars). When the baseline moves almost no bytes
// (a fully cache-resident kernel), normalization is meaningless: the
// denominator is floored at one byte per 16 instructions so such rows read
// as ~0 rather than as noise blow-ups.
func NormalizedTraffic(res map[config.Defense]Result) map[config.Defense]float64 {
	out := make(map[config.Defense]float64, len(res))
	base := float64(res[config.Base].TotalTraffic()) / float64(res[config.Base].Instructions)
	if base < 1.0/16 {
		base = 1.0 / 16
	}
	for d, r := range res {
		out[d] = (float64(r.TotalTraffic()) / float64(r.Instructions)) / base
	}
	return out
}
