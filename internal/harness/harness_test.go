package harness_test

import (
	"testing"

	"invisispec/internal/config"
	"invisispec/internal/harness"
	"invisispec/internal/stats"
)

func TestMeasureDeltasExcludeWarmup(t *testing.T) {
	r, err := harness.MeasureSPEC("hmmer", config.Base, config.TSO, 5000, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if r.Instructions < 10000-64 { // retire-width slop at the boundary
		t.Fatalf("measured %d instructions, want ~10000", r.Instructions)
	}
	if r.Instructions > 12000 {
		t.Fatalf("measured %d instructions: warmup leaked into the window", r.Instructions)
	}
	if r.Cycles == 0 || r.TotalTraffic() == 0 {
		t.Fatal("empty measurement")
	}
	if r.CPI() <= 0 {
		t.Fatal("CPI must be positive")
	}
}

func TestSweepShape(t *testing.T) {
	// The paper's headline ordering on a single kernel: Base is fastest;
	// InvisiSpec beats the corresponding fence design.
	res, err := harness.Sweep("sjeng", false, config.TSO, 5000, 15000)
	if err != nil {
		t.Fatal(err)
	}
	norm := harness.NormalizedTime(res)
	if norm[config.Base] != 1.0 {
		t.Fatalf("Base normalizes to %f", norm[config.Base])
	}
	if norm[config.ISSpectre] >= norm[config.FenceSpectre] {
		t.Errorf("IS-Sp (%.2f) not faster than Fe-Sp (%.2f)",
			norm[config.ISSpectre], norm[config.FenceSpectre])
	}
	if norm[config.ISFuture] >= norm[config.FenceFuture] {
		t.Errorf("IS-Fu (%.2f) not faster than Fe-Fu (%.2f)",
			norm[config.ISFuture], norm[config.FenceFuture])
	}
	// Traffic shape on a memory-intensive kernel: InvisiSpec produces
	// Spec-GetS and expose/validate traffic above the baseline.
	mres, err := harness.Sweep("libquantum", false, config.TSO, 5000, 15000)
	if err != nil {
		t.Fatal(err)
	}
	is := mres[config.ISFuture]
	if is.Traffic[stats.TrafficSpecLoad] == 0 {
		t.Error("IS-Fu produced no Spec-GetS traffic")
	}
	// Validations happen even when they all hit the L1 (traffic-free).
	if is.Core.Exposures+is.Core.Validations() == 0 {
		t.Error("IS-Fu performed no validations or exposures")
	}
	if mres[config.Base].Traffic[stats.TrafficSpecLoad] != 0 {
		t.Error("Base produced Spec-GetS traffic")
	}
	tr := harness.NormalizedTraffic(mres)
	if tr[config.ISFuture] <= 1.0 {
		t.Errorf("IS-Fu normalized traffic %.2f not above Base", tr[config.ISFuture])
	}
}

func TestMeasurePARSEC(t *testing.T) {
	r, err := harness.MeasurePARSEC("canneal", config.ISSpectre, config.TSO, 8000, 16000)
	if err != nil {
		t.Fatal(err)
	}
	if r.Instructions < 16000-100 { // retire-width overshoot at the warmup boundary
		t.Fatalf("measured %d instructions", r.Instructions)
	}
	// canneal's spin loads sit behind data-dependent branches, so IS-Sp
	// must classify loads as USLs.
	if r.Core.USLsIssued == 0 && r.Core.SBReuseHits == 0 {
		t.Error("IS-Sp run issued no USLs")
	}
}

func TestUnknownWorkload(t *testing.T) {
	if _, err := harness.MeasureSPEC("nope", config.Base, config.TSO, 10, 10); err == nil {
		t.Fatal("unknown workload accepted")
	}
	if _, err := harness.MeasurePARSEC("nope", config.Base, config.TSO, 10, 10); err == nil {
		t.Fatal("unknown workload accepted")
	}
}
