package harness

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"invisispec/internal/config"
	"invisispec/internal/invariant"
	"invisispec/internal/sim"
)

// The simulator must be bit-deterministic: the same (config, workload,
// windows) run twice serializes to byte-identical results.
func TestMeasureDeterministic(t *testing.T) {
	measure := func() string {
		r, err := MeasureSPEC("libquantum", config.ISSpectre, config.TSO, 3000, 8000)
		if err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("%#v", r)
	}
	a, b := measure(), measure()
	if a != b {
		t.Fatalf("same run serialized differently:\n%s\nvs\n%s", a, b)
	}
}

// Fault injection must be just as deterministic: identical seeds reproduce
// identical perturbed runs.
func TestMeasureDeterministicUnderFaults(t *testing.T) {
	measure := func(seed int64) string {
		r, err := MeasureSPEC("libquantum", config.ISSpectre, config.TSO, 3000, 8000,
			WithFaultSeed(seed), WithChecking(invariant.Options{Interval: 1024}))
		if err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("%#v", r)
	}
	if a, b := measure(7), measure(7); a != b {
		t.Fatalf("same fault seed serialized differently:\n%s\nvs\n%s", a, b)
	}
}

// A budget exhaustion must name the workload, the configuration, and the
// window it happened in, and stay errors.Is/As-matchable.
func TestMeasureErrorContext(t *testing.T) {
	// Shrink the per-instruction budget below any real CPI so the warmup
	// window exhausts deterministically.
	budgetPerInstruction = 1
	defer func() { budgetPerInstruction = 600 }()
	_, err := MeasureSPEC("hmmer", config.FenceFuture, config.TSO, 5000, 0)
	if err == nil {
		t.Fatal("starved budget did not exhaust")
	}
	check := func(err error, window string) {
		t.Helper()
		if !errors.Is(err, sim.ErrCycleBudget) {
			t.Fatalf("not a budget error: %v", err)
		}
		var be *sim.BudgetError
		if !errors.As(err, &be) {
			t.Fatalf("no BudgetError in chain: %v", err)
		}
		if len(be.Retired) == 0 || len(be.PCs) == 0 {
			t.Fatalf("budget error lacks progress context: %+v", be)
		}
		msg := err.Error()
		for _, want := range []string{"hmmer", "Fe-Fu", "TSO", window + " window"} {
			if !strings.Contains(msg, want) {
				t.Fatalf("error %q does not mention %q", msg, want)
			}
		}
	}
	check(err, "warmup")
}

// An invariant violation or deadlock inside a measured window is annotated
// with the window name too.
func TestMeasureWindowAnnotatesCheckerErrors(t *testing.T) {
	// An interval of 1 with a tiny watchdog trips instantly on any kernel
	// with a startup stall longer than K cycles; pick K below the L1-miss
	// round trip so the very first miss trips it during warmup.
	_, err := MeasureSPEC("libquantum", config.Base, config.TSO, 5000, 5000,
		WithChecking(invariant.Options{Interval: 1, WatchdogK: 1}))
	if err == nil {
		t.Skip("no stall long enough to trip a 1-cycle watchdog")
	}
	if !errors.Is(err, invariant.ErrDeadlock) {
		t.Fatalf("expected watchdog deadlock, got: %v", err)
	}
	if !strings.Contains(err.Error(), "warmup window") {
		t.Fatalf("error %q does not name the failing window", err)
	}
}

// A panic inside the measurement loop is converted into an error carrying
// the cycle number and a machine dump instead of crashing the sweep.
func TestMeasurePanicRecovery(t *testing.T) {
	testPanicHook = func() { panic("seeded test panic") }
	defer func() { testPanicHook = nil }()
	_, err := MeasureSPEC("hmmer", config.Base, config.TSO, 100, 100)
	if err == nil {
		t.Fatal("panic did not surface as an error")
	}
	msg := err.Error()
	for _, want := range []string{"panic at cycle", "seeded test panic", "machine dump", "hmmer"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("recovered error %q does not mention %q", msg, want)
		}
	}
}

// Checking enabled on a healthy measurement must not change its result.
func TestCheckingDoesNotPerturbMeasurement(t *testing.T) {
	plain, err := MeasureSPEC("sjeng", config.ISFuture, config.TSO, 3000, 8000)
	if err != nil {
		t.Fatal(err)
	}
	checked, err := MeasureSPEC("sjeng", config.ISFuture, config.TSO, 3000, 8000,
		WithChecking(invariant.Options{Interval: 512}))
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%#v", plain) != fmt.Sprintf("%#v", checked) {
		t.Fatalf("checking changed the measurement:\n%#v\nvs\n%#v", plain, checked)
	}
}
