package report

import (
	"os"
	"strings"
	"testing"

	"invisispec/internal/runner"
)

func loadBaseline(t *testing.T) *runner.Bench {
	t.Helper()
	f, err := os.Open("../../BENCH_baseline.json")
	if err != nil {
		t.Skipf("no committed baseline: %v", err)
	}
	defer f.Close()
	b, err := runner.ReadBenchJSON(f)
	if err != nil {
		t.Fatalf("reading baseline: %v", err)
	}
	return b
}

func TestRenderIndex(t *testing.T) {
	var sb strings.Builder
	d := IndexData{
		Jobs: []JobRow{
			{ID: "j1", Type: "sweep", Name: "smoke", State: "done", Completed: 70, Total: 70, CacheHits: 70},
			{ID: "j2", Type: "leakscan", Name: "x<y", State: "failed", Error: "boom <script>"},
		},
		Metrics:   MetricsView{HitRate: 0.5, Hits: 7, Misses: 7, Entries: 14, WorkersTotal: 4},
		HasTrends: true,
	}
	if err := RenderIndex(&sb, d); err != nil {
		t.Fatalf("RenderIndex: %v", err)
	}
	out := sb.String()
	for _, want := range []string{
		"<!doctype html>", "/jobs/j1", "50.0%", "x&lt;y", "boom &lt;script&gt;",
		"href=\"/trends\"", "prefers-color-scheme: dark",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("index page missing %q", want)
		}
	}
	if strings.Contains(out, "<script>") {
		t.Error("unescaped script tag in output")
	}
}

func TestRenderJobBench(t *testing.T) {
	b := loadBaseline(t)
	page := JobPage{
		Job:   JobRow{ID: "j1", Type: "sweep", Name: b.Name, State: "done", Total: len(b.Runs)},
		Bench: b,
	}
	var sb strings.Builder
	if err := RenderJob(&sb, page); err != nil {
		t.Fatalf("RenderJob: %v", err)
	}
	out := sb.String()
	for _, want := range []string{
		"Normalized execution time — TSO", "Defense comparison", "IS-Fu", "?cell=",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("job page missing %q", want)
		}
	}

	// Drilldown: pick the first run's key and re-render.
	key := b.Runs[0].RunKey()
	page.Cell = key
	sb.Reset()
	if err := RenderJob(&sb, page); err != nil {
		t.Fatalf("RenderJob with cell: %v", err)
	}
	if !strings.Contains(sb.String(), "Cell "+key) {
		t.Errorf("drilldown pane missing for %q", key)
	}
}

func TestLoadHistoryAndRenderTrends(t *testing.T) {
	hist, err := LoadHistory("../..")
	if err != nil {
		t.Fatalf("LoadHistory: %v", err)
	}
	if len(hist) == 0 {
		t.Skip("no committed BENCH_*.json history")
	}
	for _, h := range hist {
		if len(h.Defenses) == 0 || h.Avg[h.Defenses[0]] == 0 {
			t.Errorf("history point %s has no averages", h.File)
		}
	}
	var sb strings.Builder
	if err := RenderTrends(&sb, hist); err != nil {
		t.Fatalf("RenderTrends: %v", err)
	}
	out := sb.String()
	for _, want := range []string{"<svg", "<polyline", "Table view", "var(--s1)"} {
		if !strings.Contains(out, want) {
			t.Errorf("trends page missing %q", want)
		}
	}
}

func TestRenderTrendsEmpty(t *testing.T) {
	var sb strings.Builder
	if err := RenderTrends(&sb, nil); err != nil {
		t.Fatalf("RenderTrends(nil): %v", err)
	}
	if !strings.Contains(sb.String(), "No BENCH_") {
		t.Error("empty-history message missing")
	}
}
