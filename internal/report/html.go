package report

// HTML rendering. Pages are assembled with an error-collapsing writer rather
// than html/template: the dashboard's structure is data-driven (matrix
// shapes, SVG geometry) and the explicit form keeps every escape site
// visible. All dynamic strings pass through esc.

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"invisispec/internal/conform"
	"invisispec/internal/leakage"
	"invisispec/internal/runner"
)

// JobPage is the drilldown page for one job: the row summary plus the parsed
// artifact for whichever job type it is (at most one of Bench/Leakage/
// Conform is non-nil; all nil while the job is still running). Cell, when
// non-empty, selects one bench run key for the cell drilldown pane.
type JobPage struct {
	Job     JobRow
	Cell    string
	Bench   *runner.Bench
	Verdict *runner.DiffVerdict
	Leakage *leakage.Report
	Conform *conform.Report
}

// pageCSS carries the design tokens: chart chrome and the fixed-order
// categorical series palette (slots 1-8, validated light and dark), with
// dark mode as its own selected steps — not an automatic flip. Text always
// wears ink tokens; series colors only ever appear on marks and chips.
const pageCSS = `:root {
  --surface: #fcfcfb; --ink: #0b0b0b; --ink-2: #52514e; --ink-3: #898781;
  --grid: #e1e0d9; --baseline: #c3c2b7; --panel: #f4f3ef;
  --good: #0ca30c; --critical: #d03b3b;
  --s1: #2a78d6; --s2: #eb6834; --s3: #1baf7a; --s4: #eda100;
  --s5: #e87ba4; --s6: #008300; --s7: #4a3aa7; --s8: #e34948;
}
@media (prefers-color-scheme: dark) {
  :root:where(:not([data-theme="light"])) {
    --surface: #1a1a19; --ink: #ffffff; --ink-2: #c3c2b7; --ink-3: #898781;
    --grid: #2c2c2a; --baseline: #383835; --panel: #222220;
    --good: #27b327; --critical: #e66767;
    --s1: #3987e5; --s2: #d95926; --s3: #199e70; --s4: #c98500;
    --s5: #d55181; --s6: #008300; --s7: #9085e9; --s8: #e66767;
  }
}
:root[data-theme="dark"] {
  --surface: #1a1a19; --ink: #ffffff; --ink-2: #c3c2b7; --ink-3: #898781;
  --grid: #2c2c2a; --baseline: #383835; --panel: #222220;
  --good: #27b327; --critical: #e66767;
  --s1: #3987e5; --s2: #d95926; --s3: #199e70; --s4: #c98500;
  --s5: #d55181; --s6: #008300; --s7: #9085e9; --s8: #e66767;
}
* { box-sizing: border-box; }
body {
  margin: 0 auto; padding: 24px; max-width: 1100px;
  background: var(--surface); color: var(--ink);
  font: 14px/1.5 system-ui, -apple-system, "Segoe UI", sans-serif;
}
a { color: var(--s1); text-decoration: none; }
a:hover { text-decoration: underline; }
h1 { font-size: 20px; margin: 0 0 4px; }
h2 { font-size: 16px; margin: 28px 0 8px; }
h3 { font-size: 14px; margin: 20px 0 6px; color: var(--ink-2); }
nav { margin-bottom: 20px; color: var(--ink-3); }
nav a { margin-right: 12px; }
table { border-collapse: collapse; width: 100%; margin: 8px 0; }
th, td { text-align: left; padding: 4px 10px 4px 0; border-bottom: 1px solid var(--grid); }
th { color: var(--ink-2); font-weight: 600; }
td.num, th.num { text-align: right; font-variant-numeric: tabular-nums; }
.muted { color: var(--ink-3); }
.tiles { display: flex; flex-wrap: wrap; gap: 12px; margin: 12px 0; }
.tile { background: var(--panel); border-radius: 6px; padding: 10px 14px; min-width: 120px; }
.tile .v { font-size: 22px; font-weight: 650; font-variant-numeric: tabular-nums; }
.tile .k { color: var(--ink-2); font-size: 12px; }
.state { font-weight: 600; }
.state-done::before { content: "\2713\00a0"; color: var(--good); }
.state-failed::before, .state-interrupted::before { content: "\2717\00a0"; color: var(--critical); }
.pass { color: var(--good); font-weight: 600; }
.fail { color: var(--critical); font-weight: 600; }
.banner { background: var(--panel); border-left: 3px solid var(--critical);
  padding: 8px 12px; margin: 12px 0; }
.chip { display: inline-block; width: 10px; height: 10px; border-radius: 2px;
  margin-right: 6px; vertical-align: baseline; }
.legend { display: flex; flex-wrap: wrap; gap: 14px; margin: 8px 0; color: var(--ink-2); }
.viol { color: var(--critical); font-weight: 600; }
svg text { fill: var(--ink-2); font: 12px system-ui, sans-serif; }
svg .axis { stroke: var(--baseline); }
svg .grid { stroke: var(--grid); }
`

func pageStart(e *errWriter, title string, trends bool) {
	e.printf("<!doctype html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n")
	e.printf("<meta name=\"viewport\" content=\"width=device-width, initial-scale=1\">\n")
	e.printf("<title>%s</title>\n<style>%s</style>\n</head>\n<body>\n", esc(title), pageCSS)
	e.printf("<h1>%s</h1>\n<nav><a href=\"/\">jobs</a>", esc(title))
	if trends {
		e.printf("<a href=\"/trends\">trends</a>")
	}
	e.printf("<a href=\"/metrics\">metrics</a></nav>\n")
}

func pageEnd(e *errWriter) {
	e.printf("</body>\n</html>\n")
}

func chip(slot int) string {
	return fmt.Sprintf("<span class=\"chip\" style=\"background:var(--s%d)\"></span>", slot)
}

// f3 formats a ratio-like value; dashes for absent.
func f3(v float64) string {
	if v == 0 {
		return "&#8212;"
	}
	return fmt.Sprintf("%.3f", v)
}

// RenderIndex writes the dashboard index: cache/pool metric tiles and the
// job table in submission order.
func RenderIndex(w io.Writer, d IndexData) error {
	e := &errWriter{w: w}
	pageStart(e, "invisispec simulation server", d.HasTrends)
	if d.Draining {
		e.printf("<p class=\"banner\">Server is draining: submissions are refused; in-flight cells are finishing.</p>\n")
	}

	m := d.Metrics
	e.printf("<h2>Cache &amp; workers</h2>\n<div class=\"tiles\">\n")
	tile := func(v, k string) {
		e.printf("<div class=\"tile\"><div class=\"v\">%s</div><div class=\"k\">%s</div></div>\n", v, esc(k))
	}
	tile(fmt.Sprintf("%.1f%%", m.HitRate*100), "cache hit rate")
	tile(fmt.Sprintf("%d / %d", m.Hits, m.Hits+m.Misses), "hits / lookups")
	tile(fmt.Sprintf("%d", m.FlightHits), "in-flight dedups")
	tile(fmt.Sprintf("%d", m.Entries), "entries ("+fmtBytes(m.Bytes)+")")
	tile(fmt.Sprintf("%d", m.Evictions), "evictions")
	tile(fmt.Sprintf("%d", m.Corrupt), "corrupt rejected")
	tile(fmt.Sprintf("%d / %d", m.WorkersBusy, m.WorkersTotal), "workers busy")
	tile(fmt.Sprintf("%d", m.QueueDepth), "queued cells")
	e.printf("</div>\n")

	e.printf("<h2>Jobs</h2>\n")
	if len(d.Jobs) == 0 {
		e.printf("<p class=\"muted\">No jobs yet. Submit one with <code>POST /api/v1/jobs</code>.</p>\n")
	} else {
		e.printf("<table>\n<tr><th>id</th><th>type</th><th>name</th><th>state</th>" +
			"<th class=\"num\">progress</th><th class=\"num\">cache hit/miss</th>" +
			"<th class=\"num\">degraded</th><th>error</th></tr>\n")
		for _, j := range d.Jobs {
			e.printf("<tr><td><a href=\"/jobs/%s\">%s</a></td><td>%s</td><td>%s</td>",
				esc(j.ID), esc(j.ID), esc(j.Type), esc(j.Name))
			e.printf("<td><span class=\"state state-%s\">%s</span></td>", esc(j.State), esc(j.State))
			e.printf("<td class=\"num\">%d/%d</td><td class=\"num\">%d/%d</td><td class=\"num\">%d</td><td class=\"muted\">%s</td></tr>\n",
				j.Completed, j.Total, j.CacheHits, j.CacheMisses, j.Degraded, esc(j.Error))
		}
		e.printf("</table>\n")
	}
	pageEnd(e)
	return e.err
}

// RenderJob writes one job's page: status summary, then the artifact view
// for its type — for sweeps the suite -> matrix -> cell drilldown plus the
// defense comparison and the benchdiff verdict.
func RenderJob(w io.Writer, p JobPage) error {
	e := &errWriter{w: w}
	pageStart(e, "job "+p.Job.ID+" — "+p.Job.Name, false)

	e.printf("<table>\n<tr><th>type</th><th>state</th><th class=\"num\">progress</th>" +
		"<th class=\"num\">cache hit/miss</th><th class=\"num\">degraded</th></tr>\n")
	e.printf("<tr><td>%s</td><td><span class=\"state state-%s\">%s</span></td>"+
		"<td class=\"num\">%d/%d</td><td class=\"num\">%d/%d</td><td class=\"num\">%d</td></tr>\n</table>\n",
		esc(p.Job.Type), esc(p.Job.State), esc(p.Job.State),
		p.Job.Completed, p.Job.Total, p.Job.CacheHits, p.Job.CacheMisses, p.Job.Degraded)
	if p.Job.Error != "" {
		e.printf("<p class=\"banner\">%s</p>\n", esc(p.Job.Error))
	}
	if p.Job.State == "done" {
		e.printf("<p><a href=\"/api/v1/jobs/%s/artifact\">artifact JSON</a></p>\n", esc(p.Job.ID))
	}

	switch {
	case p.Bench != nil:
		renderBench(e, p)
	case p.Leakage != nil:
		renderLeakage(e, p.Leakage)
	case p.Conform != nil:
		renderConform(e, p.Conform)
	default:
		e.printf("<p class=\"muted\">Artifact view appears once the job is done.</p>\n")
	}
	pageEnd(e)
	return e.err
}

// renderBench writes the sweep view: one normalized-time matrix per
// consistency model (cells link to the drilldown), the Table V-style defense
// comparison, the verdict checks, and — when a cell is selected — the full
// run record.
func renderBench(e *errWriter, p JobPage) {
	v := buildBenchView(p.Bench, p.Cell)

	e.printf("<div class=\"legend\">")
	for _, d := range v.Defenses {
		e.printf("<span>%s%s</span>", chip(seriesSlot(d)), esc(d))
	}
	e.printf("</div>\n")

	for _, sec := range v.Sections {
		e.printf("<h2>Normalized execution time — %s</h2>\n<table>\n<tr><th>workload</th>", esc(sec.Consistency))
		for _, d := range v.Defenses {
			e.printf("<th class=\"num\">%s</th>", esc(d))
		}
		e.printf("</tr>\n")
		for _, row := range sec.Rows {
			label := row.Workload
			if row.Seed != 0 {
				label = fmt.Sprintf("%s (seed %d)", row.Workload, row.Seed)
			}
			e.printf("<tr><td>%s</td>", esc(label))
			for _, c := range row.Cells {
				switch {
				case !c.Present:
					e.printf("<td class=\"num muted\">&#8212;</td>")
				case c.Err != "":
					e.printf("<td class=\"num\"><a class=\"fail\" href=\"/jobs/%s?cell=%s\" title=\"%s\">err</a></td>",
						esc(p.Job.ID), esc(c.Key), esc(c.Err))
				default:
					val := c.Norm
					txt := f3(val)
					if val == 0 { // no Base in group: show raw CPI
						txt = fmt.Sprintf("%.3f&#8201;cpi", c.CPI)
					}
					e.printf("<td class=\"num\"><a href=\"/jobs/%s?cell=%s\">%s</a></td>",
						esc(p.Job.ID), esc(c.Key), txt)
				}
			}
			e.printf("</tr>\n")
		}
		e.printf("<tr><td class=\"muted\">average</td>")
		for _, d := range v.Defenses {
			e.printf("<td class=\"num\">%s</td>", f3(sec.Avg[d]))
		}
		e.printf("</tr>\n</table>\n")
	}

	e.printf("<h2>Defense comparison</h2>\n<table>\n<tr><th>defense</th><th class=\"num\">runs</th><th class=\"num\">avg CPI</th>")
	var cms []string
	for _, sec := range v.Sections {
		cms = append(cms, sec.Consistency)
		e.printf("<th class=\"num\">avg norm (%s)</th>", esc(sec.Consistency))
	}
	e.printf("</tr>\n")
	for _, row := range v.Compare {
		e.printf("<tr><td>%s%s</td><td class=\"num\">%d</td><td class=\"num\">%.3f</td>",
			chip(seriesSlot(row.Defense)), esc(row.Defense), row.Runs, row.AvgCPI)
		for _, cm := range cms {
			e.printf("<td class=\"num\">%s</td>", f3(row.AvgNorm[cm]))
		}
		e.printf("</tr>\n")
	}
	e.printf("</table>\n")

	if p.Verdict != nil {
		renderVerdict(e, p.Verdict)
	}
	if v.Drill != nil {
		renderDrill(e, v.Drill)
	} else if p.Cell != "" {
		e.printf("<p class=\"banner\">No run with key %s in this artifact.</p>\n", esc(p.Cell))
	}
}

func renderVerdict(e *errWriter, v *runner.DiffVerdict) {
	verdict, cls := "PASS", "pass"
	if !v.Pass {
		verdict, cls = "FAIL", "fail"
	}
	e.printf("<h2>Baseline verdict: <span class=\"%s\">%s</span></h2>\n", cls, verdict)
	e.printf("<p class=\"muted\">vs %s (tol %.2f, eps %.2f)</p>\n", esc(v.Baseline), v.Tol, v.Eps)
	e.printf("<table>\n<tr><th>check</th><th>key</th><th>result</th><th class=\"num\">base CPI</th>" +
		"<th class=\"num\">cand CPI</th><th class=\"num\">delta</th><th>detail</th></tr>\n")
	for _, c := range v.Checks {
		res, rc := "✓ pass", "pass"
		if !c.Pass {
			res, rc = "✗ fail", "fail"
		}
		e.printf("<tr><td>%s</td><td>%s</td><td class=\"%s\">%s</td>",
			esc(c.Kind), esc(c.Key), rc, res)
		if c.BaseCPI != 0 || c.CandCPI != 0 {
			e.printf("<td class=\"num\">%.4f</td><td class=\"num\">%.4f</td><td class=\"num\">%+.1f%%</td>",
				c.BaseCPI, c.CandCPI, c.Delta*100)
		} else {
			e.printf("<td class=\"num muted\">&#8212;</td><td class=\"num muted\">&#8212;</td><td class=\"num muted\">&#8212;</td>")
		}
		e.printf("<td class=\"muted\">%s</td></tr>\n", esc(c.Detail))
	}
	e.printf("</table>\n")
}

func renderDrill(e *errWriter, r *runner.BenchRun) {
	e.printf("<h2>Cell %s</h2>\n", esc(r.RunKey()))
	if r.Error != "" {
		e.printf("<p class=\"banner\">%s</p>\n", esc(r.Error))
		return
	}
	e.printf("<table>\n<tr><th>metric</th><th class=\"num\">value</th></tr>\n")
	row := func(k, v string) { e.printf("<tr><td>%s</td><td class=\"num\">%s</td></tr>\n", esc(k), v) }
	row("instructions", fmt.Sprintf("%d", r.Instructions))
	row("cycles", fmt.Sprintf("%d", r.Cycles))
	row("CPI", fmt.Sprintf("%.4f", r.CPI))
	row("normalized time", f3(r.NormalizedTime))
	row("traffic total (bytes)", fmt.Sprintf("%d", r.TrafficTotal))
	row("squashes", fmt.Sprintf("%d", r.Squashes))
	row("squashes / M inst", fmt.Sprintf("%.2f", r.SquashesPerMInst))
	row("exposures", fmt.Sprintf("%d", r.Exposures))
	row("validations", fmt.Sprintf("%d", r.Validations))
	row("LLC-SB hit rate", fmt.Sprintf("%.4f", r.LLCSBRate))
	row("DRAM reads", fmt.Sprintf("%d", r.DRAMReads))
	e.printf("</table>\n")
	if len(r.Traffic) > 0 {
		e.printf("<h3>Traffic by class</h3>\n<table>\n<tr><th>class</th><th class=\"num\">bytes</th></tr>\n")
		for _, k := range sortedKeys(r.Traffic) {
			e.printf("<tr><td>%s</td><td class=\"num\">%d</td></tr>\n", esc(k), r.Traffic[k])
		}
		e.printf("</table>\n")
	}
}

// renderLeakage writes the attack x defense verdict matrix, violations
// first.
func renderLeakage(e *errWriter, rep *leakage.Report) {
	viol := rep.Violations()
	e.printf("<h2>Leakage scan: %d cells, <span class=\"%s\">%d violations</span></h2>\n",
		len(rep.Cells), passClass(len(viol) == 0), len(viol))
	e.printf("<p class=\"muted\">corpus %s, %d trials per cell; * = leak expected by the defense matrix, ! = gate violation</p>\n",
		esc(rep.Name), rep.Trials)

	// Matrix: one row per (attack, template, secret), one column per defense.
	type rk struct {
		attack, template string
		secret           int
	}
	var order []rk
	cells := map[rk]map[string]leakage.Cell{}
	for _, c := range rep.Cells {
		k := rk{c.Attack, c.Template, c.Secret}
		if cells[k] == nil {
			cells[k] = map[string]leakage.Cell{}
			order = append(order, k)
		}
		cells[k][c.Defense] = c
	}
	e.printf("<table>\n<tr><th>attack</th>")
	for _, d := range rep.Defenses {
		e.printf("<th>%s</th>", esc(d))
	}
	e.printf("</tr>\n")
	for _, k := range order {
		e.printf("<tr><td>%s / %s / %#02x</td>", esc(k.attack), esc(k.template), k.secret)
		for _, d := range rep.Defenses {
			c, ok := cells[k][d]
			if !ok {
				e.printf("<td class=\"muted\">&#8212;</td>")
				continue
			}
			mark := c.Verdict.String()
			if c.ExpectedLeak {
				mark += "*"
			}
			cls := ""
			if c.Violation {
				mark += "!"
				cls = " class=\"viol\""
			}
			title := fmt.Sprintf("hit %.2f hot %.2f margin %.2f conf %.2f", c.HitRate, c.HotRate, c.Margin, c.Confidence)
			if c.Error != "" {
				title = c.Error
			}
			e.printf("<td%s title=\"%s\">%s</td>", cls, esc(title), esc(mark))
		}
		e.printf("</tr>\n")
	}
	e.printf("</table>\n")

	if len(viol) > 0 {
		e.printf("<h3>Violations</h3>\n<table>\n<tr><th>cell</th><th>verdict</th><th>expected</th><th>error</th></tr>\n")
		for _, c := range viol {
			e.printf("<tr><td>%s / %s / %#02x / %s</td><td class=\"fail\">%s</td><td>%s</td><td class=\"muted\">%s</td></tr>\n",
				esc(c.Attack), esc(c.Template), c.Secret, esc(c.Defense),
				esc(c.Verdict.String()), esc(c.Expected.String()), esc(c.Error))
		}
		e.printf("</table>\n")
	}
}

func renderConform(e *errWriter, rep *conform.Report) {
	ok := rep.Diverging == 0 && rep.Errors == 0
	e.printf("<h2>Conformance: %d programs, <span class=\"%s\">%d diverging, %d errors</span></h2>\n",
		rep.Programs, passClass(ok), rep.Diverging, rep.Errors)
	e.printf("<p class=\"muted\">seed %#x; configs: %s</p>\n", rep.Seed, esc(strings.Join(rep.Configs, ", ")))
	if ok {
		e.printf("<p class=\"pass\">✓ every program conforms to the golden interpreter under every configuration.</p>\n")
		return
	}
	e.printf("<table>\n<tr><th class=\"num\">program</th><th class=\"num\">insts</th><th>divergences / error</th></tr>\n")
	for _, r := range rep.Runs {
		if len(r.Divergences) == 0 && r.Error == "" {
			continue
		}
		e.printf("<tr><td class=\"num\">%d (seed %#x)</td><td class=\"num\">%d</td><td>", r.Index, r.Seed, r.Insts)
		if r.Error != "" {
			e.printf("<span class=\"fail\">%s</span>", esc(r.Error))
		}
		for i, d := range r.Divergences {
			if i > 0 || r.Error != "" {
				e.printf("<br>")
			}
			e.printf("<span class=\"fail\">%s</span>: %s", esc(d.Config), esc(d.Reason))
		}
		e.printf("</td></tr>\n")
	}
	e.printf("</table>\n")
}

func passClass(ok bool) string {
	if ok {
		return "pass"
	}
	return "fail"
}

func sortedKeys(m map[string]uint64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
