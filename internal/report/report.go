// Package report renders the simulation server's HTML dashboard: a
// hierarchical suite -> matrix -> cell drilldown over bench, leakage, and
// conformance artifacts, defense-comparison tables in the style of the
// paper's Table V, benchdiff verdicts, and trend lines across committed
// BENCH_*.json history.
//
// Everything is server-rendered plain HTML + inline SVG — no scripts, no
// external assets — so the dashboard works from curl, CI artifact viewers,
// and air-gapped hosts. Every chart ships its table view alongside, colors
// follow the repo's validated categorical palette by fixed slot order, and
// all text wears ink tokens (never series colors), so identity is never
// carried by color alone.
package report

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"invisispec/internal/runner"
)

// JobRow is one job's dashboard summary (built by internal/serve from its
// job registry).
type JobRow struct {
	ID, Type, Name, State              string
	Completed, Failed, Total, Degraded int
	CacheHits, CacheMisses             int64
	Error                              string
}

// MetricsView is the index page's metrics tiles.
type MetricsView struct {
	HitRate                               float64
	Hits, Misses, FlightHits              uint64
	Evictions, Corrupt                    uint64
	Entries                               int
	Bytes                                 int64
	QueueDepth, WorkersBusy, WorkersTotal int
}

// IndexData is the dashboard index page.
type IndexData struct {
	Jobs      []JobRow
	Metrics   MetricsView
	Draining  bool
	HasTrends bool
}

// HistoryPoint is one committed BENCH_*.json artifact's summary for the
// trend chart: per-defense average normalized execution time over the
// artifact's complete TSO groups.
type HistoryPoint struct {
	File     string // base name, the x-axis label
	Name     string // artifact's embedded name
	Runs     int
	Defenses []string           // defense order as first seen in the artifact
	Avg      map[string]float64 // defense -> avg normalized time (TSO)
}

// LoadHistory reads every BENCH_*.json in dir (sorted by file name, so the
// trend axis is deterministic) and summarizes each. Unreadable or
// wrong-schema files are skipped rather than failing the page — history
// directories accumulate artifacts from many eras.
func LoadHistory(dir string) ([]HistoryPoint, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	var out []HistoryPoint
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			continue
		}
		b, err := runner.ReadBenchJSON(f)
		f.Close()
		if err != nil {
			continue
		}
		out = append(out, summarize(filepath.Base(p), b))
	}
	return out, nil
}

// summarize reduces one artifact to its per-defense TSO-average normalized
// time.
func summarize(file string, b *runner.Bench) HistoryPoint {
	h := HistoryPoint{File: file, Name: b.Name, Runs: len(b.Runs), Avg: map[string]float64{}}
	sums := map[string]float64{}
	ns := map[string]int{}
	for _, r := range b.Runs {
		if r.Error != "" || r.Consistency != "TSO" || r.NormalizedTime == 0 {
			continue
		}
		if _, seen := sums[r.Defense]; !seen {
			h.Defenses = append(h.Defenses, r.Defense)
		}
		sums[r.Defense] += r.NormalizedTime
		ns[r.Defense]++
	}
	for _, d := range h.Defenses {
		h.Avg[d] = sums[d] / float64(ns[d])
	}
	return h
}

// benchView is the aggregated matrix the job page renders for sweeps.
type benchView struct {
	Defenses []string
	Sections []benchSection
	// Compare is the Table V-style defense comparison: one row per defense
	// with its per-model averages.
	Compare []compareRow
	// Drill is the selected cell's full run, when the page has one.
	Drill    *runner.BenchRun
	DrillKey string
}

type benchSection struct {
	Consistency string
	Rows        []benchRow
	Avg         map[string]float64 // defense -> avg normalized time
}

type benchRow struct {
	Workload string
	Seed     int64
	Cells    []benchCell
}

type benchCell struct {
	Key     string // run key, the drilldown link
	Norm    float64
	CPI     float64
	Err     string
	Present bool
}

type compareRow struct {
	Defense string
	Runs    int
	AvgCPI  float64
	// AvgNorm is per consistency model, keyed like the sections.
	AvgNorm map[string]float64
}

// buildBenchView aggregates an artifact into matrix order: defenses and
// workloads in first-appearance order (the artifact is matrix-ordered), one
// section per consistency model.
func buildBenchView(b *runner.Bench, drillKey string) *benchView {
	v := &benchView{DrillKey: drillKey}
	defSeen := map[string]bool{}
	type rowKey struct {
		cm, wk string
		seed   int64
	}
	rows := map[rowKey]*benchRow{}
	sections := map[string]*benchSection{}
	var cmOrder []string
	var rowOrder []rowKey

	for i := range b.Runs {
		r := &b.Runs[i]
		if !defSeen[r.Defense] {
			defSeen[r.Defense] = true
			v.Defenses = append(v.Defenses, r.Defense)
		}
		if sections[r.Consistency] == nil {
			sections[r.Consistency] = &benchSection{Consistency: r.Consistency, Avg: map[string]float64{}}
			cmOrder = append(cmOrder, r.Consistency)
		}
		rk := rowKey{r.Consistency, r.Workload, r.FaultSeed}
		if rows[rk] == nil {
			rows[rk] = &benchRow{Workload: r.Workload, Seed: r.FaultSeed}
			rowOrder = append(rowOrder, rk)
		}
		if r.RunKey() == drillKey {
			v.Drill = r
		}
	}
	// Second pass: place each run in its row slot by defense column.
	idx := map[string]int{}
	for i, d := range v.Defenses {
		idx[d] = i
	}
	for _, rk := range rowOrder {
		rows[rk].Cells = make([]benchCell, len(v.Defenses))
	}
	avgSum := map[string]map[string]float64{}
	avgN := map[string]map[string]int{}
	cmpCPI := map[string]float64{}
	cmpN := map[string]int{}
	cmpNorm := map[string]map[string]float64{}
	for _, r := range b.Runs {
		rk := rowKey{r.Consistency, r.Workload, r.FaultSeed}
		rows[rk].Cells[idx[r.Defense]] = benchCell{
			Key: r.RunKey(), Norm: r.NormalizedTime, CPI: r.CPI, Err: r.Error, Present: true,
		}
		if r.Error != "" {
			continue
		}
		if avgSum[r.Consistency] == nil {
			avgSum[r.Consistency] = map[string]float64{}
			avgN[r.Consistency] = map[string]int{}
		}
		if r.NormalizedTime > 0 {
			avgSum[r.Consistency][r.Defense] += r.NormalizedTime
			avgN[r.Consistency][r.Defense]++
			if cmpNorm[r.Defense] == nil {
				cmpNorm[r.Defense] = map[string]float64{}
			}
		}
		cmpCPI[r.Defense] += r.CPI
		cmpN[r.Defense]++
	}
	for _, cm := range cmOrder {
		sec := sections[cm]
		for _, rk := range rowOrder {
			if rk.cm == cm {
				sec.Rows = append(sec.Rows, *rows[rk])
			}
		}
		for _, d := range v.Defenses {
			if n := avgN[cm][d]; n > 0 {
				sec.Avg[d] = avgSum[cm][d] / float64(n)
			}
		}
		v.Sections = append(v.Sections, *sec)
	}
	for _, d := range v.Defenses {
		row := compareRow{Defense: d, Runs: cmpN[d], AvgNorm: map[string]float64{}}
		if cmpN[d] > 0 {
			row.AvgCPI = cmpCPI[d] / float64(cmpN[d])
		}
		for _, cm := range cmOrder {
			if n := avgN[cm][d]; n > 0 {
				row.AvgNorm[cm] = avgSum[cm][d] / float64(n)
			}
		}
		v.Compare = append(v.Compare, row)
	}
	return v
}

// seriesSlot maps a defense to its fixed categorical palette slot (1-based).
// The order is the defense registry's matrix order: color follows the
// entity, never its position in a particular chart, so a filtered matrix
// never repaints the survivors.
var seriesOrder = []string{"Base", "Fe-Sp", "IS-Sp", "Fe-Fu", "IS-Fu", "SpecBox", "BasicBlocker"}

func seriesSlot(defense string) int {
	for i, d := range seriesOrder {
		if d == defense {
			return i + 1
		}
	}
	// Unknown (later-registered) schemes fold onto slot 8 rather than
	// inventing a 9th hue.
	return 8
}

// fmtBytes renders a byte count for the metrics tiles.
func fmtBytes(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%d B", n)
}

// writeAll is the small error-collapsing writer the renderers share.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}

// esc HTML-escapes text content and attribute values.
func esc(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
