package report

// The trends page: per-defense average normalized execution time across the
// committed BENCH_*.json history, drawn as an inline SVG line chart (2px
// lines, 8px markers with a 2px surface ring, one y axis, recessive grid)
// plus its table view. With seven defense series the legend carries identity
// (direct labels are reserved for charts of four or fewer series).

import (
	"fmt"
	"io"
	"math"
)

const (
	chartW     = 760
	chartH     = 340
	chartLeft  = 52
	chartRight = 20
	chartTop   = 16
	chartBot   = 44
)

// RenderTrends writes the history page. Points with no data for a defense
// simply break that series' line.
func RenderTrends(w io.Writer, hist []HistoryPoint) error {
	e := &errWriter{w: w}
	pageStart(e, "trends — normalized execution time", true)

	if len(hist) == 0 {
		e.printf("<p class=\"muted\">No BENCH_*.json artifacts in the history directory yet.</p>\n")
		pageEnd(e)
		return e.err
	}

	// Union of defenses across history, in fixed palette-slot order so the
	// color follows the defense across pages.
	defs := unionDefenses(hist)

	e.printf("<h2>Average normalized time (TSO) per defense</h2>\n")
	e.printf("<p class=\"muted\">One point per committed bench artifact, in file-name order. Base is 1.0 by construction.</p>\n")
	e.printf("<div class=\"legend\">")
	for _, d := range defs {
		e.printf("<span>%s%s</span>", chip(seriesSlot(d)), esc(d))
	}
	e.printf("</div>\n")

	renderTrendSVG(e, hist, defs)

	// Table view: the accessibility channel for the same data.
	e.printf("<h3>Table view</h3>\n<table>\n<tr><th>artifact</th><th>name</th><th class=\"num\">runs</th>")
	for _, d := range defs {
		e.printf("<th class=\"num\">%s</th>", esc(d))
	}
	e.printf("</tr>\n")
	for _, h := range hist {
		e.printf("<tr><td>%s</td><td>%s</td><td class=\"num\">%d</td>", esc(h.File), esc(h.Name), h.Runs)
		for _, d := range defs {
			if v, ok := h.Avg[d]; ok {
				e.printf("<td class=\"num\">%.3f</td>", v)
			} else {
				e.printf("<td class=\"num muted\">&#8212;</td>")
			}
		}
		e.printf("</tr>\n")
	}
	e.printf("</table>\n")
	pageEnd(e)
	return e.err
}

func unionDefenses(hist []HistoryPoint) []string {
	seen := map[string]bool{}
	var extra []string
	for _, h := range hist {
		for _, d := range h.Defenses {
			if !seen[d] {
				seen[d] = true
				if seriesSlot(d) == 8 {
					extra = append(extra, d)
				}
			}
		}
	}
	var out []string
	for _, d := range seriesOrder {
		if seen[d] {
			out = append(out, d)
		}
	}
	return append(out, extra...)
}

// renderTrendSVG draws the line chart. Geometry is computed here; the SVG
// itself is static markup with native <title> tooltips on every marker.
func renderTrendSVG(e *errWriter, hist []HistoryPoint, defs []string) {
	ymax := 0.0
	for _, h := range hist {
		for _, v := range h.Avg {
			ymax = math.Max(ymax, v)
		}
	}
	if ymax == 0 {
		ymax = 1
	}
	ymax = niceCeil(ymax * 1.05)

	plotW := float64(chartW - chartLeft - chartRight)
	plotH := float64(chartH - chartTop - chartBot)
	xAt := func(i int) float64 {
		if len(hist) == 1 {
			return float64(chartLeft) + plotW/2
		}
		return float64(chartLeft) + plotW*float64(i)/float64(len(hist)-1)
	}
	yAt := func(v float64) float64 {
		return float64(chartTop) + plotH*(1-v/ymax)
	}

	e.printf("<svg viewBox=\"0 0 %d %d\" width=\"%d\" height=\"%d\" role=\"img\" aria-label=\"Normalized execution time per defense across bench artifacts\">\n",
		chartW, chartH, chartW, chartH)

	// Grid and y-axis labels: four even steps, hairline grid, the x baseline
	// slightly heavier.
	for i := 0; i <= 4; i++ {
		v := ymax * float64(i) / 4
		y := yAt(v)
		cls := "grid"
		if i == 0 {
			cls = "axis"
		}
		e.printf("<line class=\"%s\" x1=\"%d\" y1=\"%.1f\" x2=\"%d\" y2=\"%.1f\" stroke-width=\"1\"/>\n",
			cls, chartLeft, y, chartW-chartRight, y)
		e.printf("<text x=\"%d\" y=\"%.1f\" text-anchor=\"end\" dominant-baseline=\"middle\">%.1f</text>\n",
			chartLeft-8, y, v)
	}
	// X labels: artifact file names, trimmed of the BENCH_ prefix.
	for i, h := range hist {
		e.printf("<text x=\"%.1f\" y=\"%d\" text-anchor=\"middle\">%s</text>\n",
			xAt(i), chartH-chartBot+24, esc(trimBench(h.File)))
	}

	// Series: 2px line, then 8px markers ringed with the surface color so
	// overlapping series stay separable.
	for _, d := range defs {
		slot := seriesSlot(d)
		var path []string
		for i, h := range hist {
			v, ok := h.Avg[d]
			if !ok {
				path = append(path, "") // series break
				continue
			}
			path = append(path, fmt.Sprintf("%.1f,%.1f", xAt(i), yAt(v)))
		}
		for _, seg := range segments(path) {
			if len(seg) > 1 {
				e.printf("<polyline fill=\"none\" stroke=\"var(--s%d)\" stroke-width=\"2\" points=\"%s\"/>\n",
					slot, joinPoints(seg))
			}
		}
		for i, h := range hist {
			v, ok := h.Avg[d]
			if !ok {
				continue
			}
			e.printf("<circle cx=\"%.1f\" cy=\"%.1f\" r=\"4\" fill=\"var(--s%d)\" stroke=\"var(--surface)\" stroke-width=\"2\">"+
				"<title>%s — %s: %.3f</title></circle>\n",
				xAt(i), yAt(v), slot, esc(trimBench(h.File)), esc(d), v)
		}
	}
	e.printf("</svg>\n")
}

// segments splits a point list at empty entries (missing data) so each
// contiguous run draws as its own polyline.
func segments(pts []string) [][]string {
	var out [][]string
	var cur []string
	for _, p := range pts {
		if p == "" {
			if len(cur) > 0 {
				out = append(out, cur)
				cur = nil
			}
			continue
		}
		cur = append(cur, p)
	}
	if len(cur) > 0 {
		out = append(out, cur)
	}
	return out
}

func joinPoints(pts []string) string {
	s := ""
	for i, p := range pts {
		if i > 0 {
			s += " "
		}
		s += p
	}
	return s
}

func trimBench(file string) string {
	const pre, suf = "BENCH_", ".json"
	s := file
	if len(s) > len(pre) && s[:len(pre)] == pre {
		s = s[len(pre):]
	}
	if len(s) > len(suf) && s[len(s)-len(suf):] == suf {
		s = s[:len(s)-len(suf)]
	}
	return s
}

// niceCeil rounds v up to a tidy axis maximum (1-2-2.5-5 progression).
func niceCeil(v float64) float64 {
	if v <= 0 {
		return 1
	}
	mag := math.Pow(10, math.Floor(math.Log10(v)))
	for _, m := range []float64{1, 1.5, 2, 2.5, 3, 4, 5, 7.5, 10} {
		if v <= m*mag {
			return m * mag
		}
	}
	return 10 * mag
}
