// Package stats collects the simulation counters the paper reports:
// execution cycles, network traffic split by cause (Figures 6 and 8),
// squash counts broken down by reason, exposure/validation mix,
// and speculative-buffer hit rates (Table VI).
package stats

import "fmt"

// SquashReason classifies why a pipeline squash happened (Table I sources).
type SquashReason int

// Squash reasons.
const (
	SquashBranch      SquashReason = iota // control-flow misprediction
	SquashMemDep                          // address alias between a load and an earlier store
	SquashConsistency                     // memory consistency violation (invalidation/eviction)
	SquashEarly                           // InvisiSpec early squash of a V-state USL on invalidation (§V-C2)
	SquashValidation                      // InvisiSpec validation failure
	SquashException                       // exception at retirement
	SquashInterrupt                       // (timer) interrupt
	NumSquashReasons
)

// String names the squash reason.
func (r SquashReason) String() string {
	switch r {
	case SquashBranch:
		return "branch-mispredict"
	case SquashMemDep:
		return "memory-dependence"
	case SquashConsistency:
		return "consistency-violation"
	case SquashEarly:
		return "early-squash"
	case SquashValidation:
		return "validation-failure"
	case SquashException:
		return "exception"
	case SquashInterrupt:
		return "interrupt"
	}
	return fmt.Sprintf("SquashReason(%d)", int(r))
}

// TrafficClass classifies NoC bytes by what caused them (Figures 6, 8).
type TrafficClass int

// Traffic classes.
const (
	TrafficNormal    TrafficClass = iota // demand accesses by safe loads/stores
	TrafficSpecLoad                      // Spec-GetS transactions by USLs
	TrafficValExp                        // validation and exposure transactions
	TrafficWriteback                     // dirty evictions and recalls
	TrafficFetch                         // instruction fetch
	NumTrafficClasses
)

// String names the traffic class.
func (c TrafficClass) String() string {
	switch c {
	case TrafficNormal:
		return "normal"
	case TrafficSpecLoad:
		return "spec-load"
	case TrafficValExp:
		return "expose-validate"
	case TrafficWriteback:
		return "writeback"
	case TrafficFetch:
		return "fetch"
	}
	return fmt.Sprintf("TrafficClass(%d)", int(c))
}

// TrafficClassNames lists the class names in counter order, for writers that
// key a traffic split by name (the bench-JSON artifact).
func TrafficClassNames() [NumTrafficClasses]string {
	var out [NumTrafficClasses]string
	for c := TrafficClass(0); c < NumTrafficClasses; c++ {
		out[c] = c.String()
	}
	return out
}

// Core aggregates the counters of one simulated core.
type Core struct {
	Cycles   uint64
	Retired  uint64
	Fetched  uint64
	Squashed uint64 // instructions squashed

	Squashes [NumSquashReasons]uint64 // squash events by reason

	CondBranches  uint64
	Mispredicts   uint64
	LoadsRetired  uint64
	StoresRetired uint64

	// InvisiSpec.
	USLsIssued          uint64
	Exposures           uint64
	ValidationsL1Hit    uint64
	ValidationsL1Miss   uint64
	ValidationFailures  uint64
	ValidationStall     uint64 // cycles retirement stalled on a validation
	SBReuseHits         uint64 // USLs served from an earlier USL's SB line
	SBReuseMisses       uint64
	LLCSBHits           uint64 // validations/exposures served by the LLC-SB
	LLCSBMisses         uint64
	InterruptsDelayed   uint64 // interrupts deferred by the §VI-D window
	PrefetchesInvisible uint64

	// Defense-scheme accounting (internal/defense cleanup hooks).
	SpecLabelsCleared uint64 // SpecBox labels cleared as their loads retired
	SpecLabelsFlushed uint64 // SpecBox labels flushed by squashes

	// TLB.
	TLBHits         uint64
	TLBMisses       uint64
	TLBWalksDelayed uint64 // walks deferred to the visibility point

	// Memory system, core-side view.
	L1DHits   uint64
	L1DMisses uint64
}

// Validations returns the total validation count.
func (c *Core) Validations() uint64 { return c.ValidationsL1Hit + c.ValidationsL1Miss }

// IPC returns retired instructions per cycle.
func (c *Core) IPC() float64 {
	if c.Cycles == 0 {
		return 0
	}
	return float64(c.Retired) / float64(c.Cycles)
}

// MispredictRate returns conditional branch mispredictions per prediction.
func (c *Core) MispredictRate() float64 {
	if c.CondBranches == 0 {
		return 0
	}
	return float64(c.Mispredicts) / float64(c.CondBranches)
}

// TotalSquashes returns squash events summed across all reasons.
func (c *Core) TotalSquashes() uint64 {
	var total uint64
	for _, v := range c.Squashes {
		total += v
	}
	return total
}

// SquashesPerMInst returns squash events per million retired instructions.
func (c *Core) SquashesPerMInst() float64 {
	if c.Retired == 0 {
		return 0
	}
	return float64(c.TotalSquashes()) * 1e6 / float64(c.Retired)
}

// Machine aggregates counters across cores plus shared-resource counters.
type Machine struct {
	Cores []Core
	// TrafficBytes counts NoC + DRAM-channel bytes by class.
	TrafficBytes [NumTrafficClasses]uint64
	// Cycles is the global cycle count when the run finished.
	Cycles uint64
	// DRAMReads/DRAMWrites count main-memory line transfers.
	DRAMReads  uint64
	DRAMWrites uint64
	// LLCHits/LLCMisses count demand accesses at the shared cache.
	LLCHits   uint64
	LLCMisses uint64
}

// NewMachine returns zeroed stats for n cores.
func NewMachine(n int) *Machine {
	return &Machine{Cores: make([]Core, n)}
}

// Fingerprint renders every counter in the stats block — global cycles,
// per-core counters (retired, squashes by reason, InvisiSpec activity,
// TLB, L1D), traffic by class, and the shared LLC/DRAM counters — into one
// deterministic string. The kernel-equivalence tests compare fingerprints
// byte-for-byte between the stepped and fast-forward simulation kernels;
// any counter divergence, however small, fails the oracle.
func (m *Machine) Fingerprint() string {
	return fmt.Sprintf("%+v", *m)
}

// TotalTraffic returns all bytes moved.
func (m *Machine) TotalTraffic() uint64 {
	var t uint64
	for _, v := range m.TrafficBytes {
		t += v
	}
	return t
}

// TotalRetired sums retired instructions across cores.
func (m *Machine) TotalRetired() uint64 {
	var t uint64
	for i := range m.Cores {
		t += m.Cores[i].Retired
	}
	return t
}

// AddTraffic records nbytes of traffic of the given class.
func (m *Machine) AddTraffic(class TrafficClass, nbytes uint64) {
	m.TrafficBytes[class] += nbytes
}

// Sum returns the element-wise sum of per-core counters, useful for
// machine-wide rates in Table VI.
func (m *Machine) Sum() Core {
	var s Core
	for i := range m.Cores {
		c := &m.Cores[i]
		s.Cycles += c.Cycles
		s.Retired += c.Retired
		s.Fetched += c.Fetched
		s.Squashed += c.Squashed
		for r := 0; r < int(NumSquashReasons); r++ {
			s.Squashes[r] += c.Squashes[r]
		}
		s.CondBranches += c.CondBranches
		s.Mispredicts += c.Mispredicts
		s.LoadsRetired += c.LoadsRetired
		s.StoresRetired += c.StoresRetired
		s.USLsIssued += c.USLsIssued
		s.Exposures += c.Exposures
		s.ValidationsL1Hit += c.ValidationsL1Hit
		s.ValidationsL1Miss += c.ValidationsL1Miss
		s.ValidationFailures += c.ValidationFailures
		s.ValidationStall += c.ValidationStall
		s.SBReuseHits += c.SBReuseHits
		s.SBReuseMisses += c.SBReuseMisses
		s.LLCSBHits += c.LLCSBHits
		s.LLCSBMisses += c.LLCSBMisses
		s.InterruptsDelayed += c.InterruptsDelayed
		s.PrefetchesInvisible += c.PrefetchesInvisible
		s.SpecLabelsCleared += c.SpecLabelsCleared
		s.SpecLabelsFlushed += c.SpecLabelsFlushed
		s.TLBHits += c.TLBHits
		s.TLBMisses += c.TLBMisses
		s.TLBWalksDelayed += c.TLBWalksDelayed
		s.L1DHits += c.L1DHits
		s.L1DMisses += c.L1DMisses
	}
	return s
}

// Sub returns c minus prev, element-wise: the counters accumulated between
// two snapshots (used to exclude warmup from measurements).
func (c Core) Sub(prev Core) Core {
	r := c
	r.Cycles -= prev.Cycles
	r.Retired -= prev.Retired
	r.Fetched -= prev.Fetched
	r.Squashed -= prev.Squashed
	for i := range r.Squashes {
		r.Squashes[i] -= prev.Squashes[i]
	}
	r.CondBranches -= prev.CondBranches
	r.Mispredicts -= prev.Mispredicts
	r.LoadsRetired -= prev.LoadsRetired
	r.StoresRetired -= prev.StoresRetired
	r.USLsIssued -= prev.USLsIssued
	r.Exposures -= prev.Exposures
	r.ValidationsL1Hit -= prev.ValidationsL1Hit
	r.ValidationsL1Miss -= prev.ValidationsL1Miss
	r.ValidationFailures -= prev.ValidationFailures
	r.ValidationStall -= prev.ValidationStall
	r.SBReuseHits -= prev.SBReuseHits
	r.SBReuseMisses -= prev.SBReuseMisses
	r.LLCSBHits -= prev.LLCSBHits
	r.LLCSBMisses -= prev.LLCSBMisses
	r.InterruptsDelayed -= prev.InterruptsDelayed
	r.PrefetchesInvisible -= prev.PrefetchesInvisible
	r.SpecLabelsCleared -= prev.SpecLabelsCleared
	r.SpecLabelsFlushed -= prev.SpecLabelsFlushed
	r.TLBHits -= prev.TLBHits
	r.TLBMisses -= prev.TLBMisses
	r.TLBWalksDelayed -= prev.TLBWalksDelayed
	r.L1DHits -= prev.L1DHits
	r.L1DMisses -= prev.L1DMisses
	return r
}
