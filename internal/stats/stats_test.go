package stats

import "testing"

func TestCoreRates(t *testing.T) {
	c := Core{Cycles: 1000, Retired: 2000, CondBranches: 100, Mispredicts: 7}
	if got := c.IPC(); got != 2.0 {
		t.Errorf("IPC = %f", got)
	}
	if got := c.MispredictRate(); got != 0.07 {
		t.Errorf("mispredict rate = %f", got)
	}
	c.Squashes[SquashBranch] = 3
	c.Squashes[SquashValidation] = 1
	if got := c.SquashesPerMInst(); got != 2000 {
		t.Errorf("squashes/Minst = %f", got)
	}
	var zero Core
	if zero.IPC() != 0 || zero.MispredictRate() != 0 || zero.SquashesPerMInst() != 0 {
		t.Error("zero-core rates must be zero, not NaN")
	}
}

func TestValidationsSum(t *testing.T) {
	c := Core{ValidationsL1Hit: 3, ValidationsL1Miss: 4}
	if c.Validations() != 7 {
		t.Errorf("Validations = %d", c.Validations())
	}
}

func TestMachineAggregation(t *testing.T) {
	m := NewMachine(2)
	m.Cores[0] = Core{Retired: 10, Exposures: 1, TLBMisses: 2}
	m.Cores[1] = Core{Retired: 32, Exposures: 4, TLBMisses: 8}
	if m.TotalRetired() != 42 {
		t.Errorf("TotalRetired = %d", m.TotalRetired())
	}
	s := m.Sum()
	if s.Retired != 42 || s.Exposures != 5 || s.TLBMisses != 10 {
		t.Errorf("Sum = %+v", s)
	}
	m.AddTraffic(TrafficSpecLoad, 100)
	m.AddTraffic(TrafficNormal, 11)
	if m.TotalTraffic() != 111 {
		t.Errorf("TotalTraffic = %d", m.TotalTraffic())
	}
}

func TestSubDeltas(t *testing.T) {
	now := Core{Cycles: 100, Retired: 50, Mispredicts: 9, LLCSBHits: 4}
	now.Squashes[SquashEarly] = 6
	prev := Core{Cycles: 40, Retired: 20, Mispredicts: 2, LLCSBHits: 1}
	prev.Squashes[SquashEarly] = 2
	d := now.Sub(prev)
	if d.Cycles != 60 || d.Retired != 30 || d.Mispredicts != 7 || d.LLCSBHits != 3 {
		t.Errorf("Sub = %+v", d)
	}
	if d.Squashes[SquashEarly] != 4 {
		t.Errorf("Sub squashes = %d", d.Squashes[SquashEarly])
	}
}

func TestEnumStrings(t *testing.T) {
	for r := SquashReason(0); r < NumSquashReasons; r++ {
		if r.String() == "" {
			t.Errorf("squash reason %d unprintable", r)
		}
	}
	if SquashReason(99).String() == "" {
		t.Error("out-of-range squash reason unprintable")
	}
	for c := TrafficClass(0); c < NumTrafficClasses; c++ {
		if c.String() == "" {
			t.Errorf("traffic class %d unprintable", c)
		}
	}
	if TrafficClass(99).String() == "" {
		t.Error("out-of-range traffic class unprintable")
	}
}
