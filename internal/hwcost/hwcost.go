// Package hwcost is an analytical SRAM/CAM cost model standing in for
// CACTI 5 (paper §IX-E): it estimates area, access time, dynamic energy and
// leakage of InvisiSpec's two added structures — the per-core L1 Speculative
// Buffer and the per-core LLC Speculative Buffer — at a 16 nm node. The
// linear-plus-offset coefficients below were calibrated against the CACTI
// outputs the paper reports in Table VII, so small arrays of this class
// reproduce those values; the model is documented as a substitution in
// DESIGN.md §2.
package hwcost

import "invisispec/internal/config"

// Array describes one SRAM/CAM structure.
type Array struct {
	Name     string
	Entries  int
	DataBits int // payload bits per entry
	TagBits  int // tag/metadata bits per entry (CAM-searched when CAM)
	CAM      bool
}

// Bits returns the structure's total storage bits.
func (a Array) Bits() int { return a.Entries * (a.DataBits + a.TagBits) }

// Estimate is the cost report for one structure (Table VII's rows).
type Estimate struct {
	AreaMM2  float64 // mm^2
	AccessPS float64 // ps
	ReadPJ   float64 // pJ per read
	WritePJ  float64 // pJ per write
	LeakMW   float64 // mW
}

// Model coefficients for small arrays at 16 nm (fit to CACTI 5 as reported
// in the paper's Table VII).
const (
	areaBaseMM2   = 0.0030 // decoder/periphery floor
	areaPerBitMM2 = 7.7e-7 // per storage bit
	camAreaFactor = 1.06   // CAM match-line overhead on tag bits
	accessBasePS  = 55.0   //
	accessPerLog  = 10.0   // per log2(bits/1024)
	energyBasePJ  = 0.85   // pJ
	energyPerBit  = 1.9e-4 // pJ per bit
	writeFactor   = 0.977  // writes slightly cheaper (no sense amps)
	leakPerBitMW  = 3.0e-5 // mW per bit
	camLeakFactor = 1.10   // CAM comparators leak more
)

func log2f(v float64) float64 {
	n := 0.0
	for v >= 2 {
		v /= 2
		n++
	}
	return n + (v - 1) // linear interpolation between powers of two
}

// Estimate computes the cost of an array.
func (a Array) Estimate() Estimate {
	bits := float64(a.Bits())
	tagBits := float64(a.Entries * a.TagBits)
	area := areaBaseMM2 + bits*areaPerBitMM2
	leak := bits * leakPerBitMW
	if a.CAM {
		area += tagBits * areaPerBitMM2 * (camAreaFactor - 1)
		leak *= camLeakFactor
	}
	read := energyBasePJ + bits*energyPerBit
	return Estimate{
		AreaMM2:  area,
		AccessPS: accessBasePS + accessPerLog*log2f(bits/1024),
		ReadPJ:   read,
		WritePJ:  read * writeFactor,
		LeakMW:   leak,
	}
}

// L1SB describes the per-core L1 Speculative Buffer for a machine: one
// entry per load-queue slot, each holding a 64-byte line, a byte-granular
// address mask, and the status bits of Figure 3.
func L1SB(m config.Machine) Array {
	return Array{
		Name:     "L1-SB",
		Entries:  m.LQEntries,
		DataBits: m.LineSize * 8,
		TagBits:  m.LineSize + 8, // address mask + Valid/Performed/State/Prefetch
	}
}

// LLCSB describes the per-core LLC Speculative Buffer: one entry per
// load-queue slot holding a line, its address tag, and the epoch ID
// (§VI-C); lookups are associative on (address, epoch).
func LLCSB(m config.Machine) Array {
	return Array{
		Name:     "LLC-SB",
		Entries:  m.LQEntries,
		DataBits: m.LineSize * 8,
		TagBits:  42 + 16 + 1, // line address + epoch + valid
		CAM:      true,
	}
}
