package hwcost

import (
	"testing"

	"invisispec/internal/config"
)

func within(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if got < want*(1-tol) || got > want*(1+tol) {
		t.Errorf("%s = %.4f, want %.4f +/- %.0f%%", name, got, want, tol*100)
	}
}

// The model must reproduce the paper's Table VII within a modest tolerance.
func TestTable7L1SB(t *testing.T) {
	e := L1SB(config.Default(1)).Estimate()
	within(t, "L1-SB area", e.AreaMM2, 0.0174, 0.15)
	within(t, "L1-SB access", e.AccessPS, 97.1, 0.15)
	within(t, "L1-SB read", e.ReadPJ, 4.4, 0.15)
	within(t, "L1-SB write", e.WritePJ, 4.3, 0.15)
	within(t, "L1-SB leak", e.LeakMW, 0.56, 0.15)
}

func TestTable7LLCSB(t *testing.T) {
	e := LLCSB(config.Default(1)).Estimate()
	within(t, "LLC-SB area", e.AreaMM2, 0.0176, 0.15)
	within(t, "LLC-SB access", e.AccessPS, 97.1, 0.15)
	within(t, "LLC-SB read", e.ReadPJ, 4.4, 0.15)
	within(t, "LLC-SB write", e.WritePJ, 4.3, 0.15)
	within(t, "LLC-SB leak", e.LeakMW, 0.61, 0.15)
}

func TestMonotonicInBits(t *testing.T) {
	small := Array{Entries: 16, DataBits: 512, TagBits: 64}.Estimate()
	big := Array{Entries: 64, DataBits: 512, TagBits: 64}.Estimate()
	if big.AreaMM2 <= small.AreaMM2 || big.ReadPJ <= small.ReadPJ ||
		big.LeakMW <= small.LeakMW || big.AccessPS <= small.AccessPS {
		t.Error("costs must grow with capacity")
	}
}

func TestCAMCostsMore(t *testing.T) {
	ram := Array{Entries: 32, DataBits: 512, TagBits: 59}.Estimate()
	cam := Array{Entries: 32, DataBits: 512, TagBits: 59, CAM: true}.Estimate()
	if cam.AreaMM2 <= ram.AreaMM2 || cam.LeakMW <= ram.LeakMW {
		t.Error("CAM must cost more than RAM of the same geometry")
	}
}

func TestBits(t *testing.T) {
	a := Array{Entries: 32, DataBits: 512, TagBits: 72}
	if a.Bits() != 32*584 {
		t.Fatalf("Bits = %d", a.Bits())
	}
}
